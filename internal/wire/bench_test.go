package wire

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// benchTrace is a ~20k-event dictionary workload shared by the decode and
// parse benchmarks so the events/s numbers are directly comparable.
func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	cfg := trace.GenConfig{
		Threads: 8, Objects: 6, Keys: 16, Vals: 8, Locks: 4,
		OpsMin: 400, OpsMax: 600, PSize: 15, PGet: 35, PLocked: 30, PRemove: 25,
	}
	return trace.Generate(rand.New(rand.NewSource(42)), cfg)
}

// BenchmarkWireDecode streams the RDB2 binary form through the decoder
// (no trace.Trace materialized), the hot loop of rd2d ingestion.
func BenchmarkWireDecode(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != tr.Len() {
			b.Fatalf("decoded %d events, want %d", n, tr.Len())
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkTextParse streams the same trace's text form through the
// streaming text parser — the baseline BenchmarkWireDecode is gated
// against (wire must decode at least 2x the events/s of text).
func BenchmarkTextParse(b *testing.B) {
	tr := benchTrace(b)
	text := trace.Format(tr)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.NewTextSource(strings.NewReader(text))
		n := 0
		for {
			_, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != tr.Len() {
			b.Fatalf("parsed %d events, want %d", n, tr.Len())
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkWireEncode measures the producer side (tracegen -wire, rd2
// -send, wire.Client).
func BenchmarkWireEncode(b *testing.B) {
	tr := benchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder(io.Discard)
		for j := range tr.Events {
			if err := enc.WriteEvent(&tr.Events[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Len())*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}
