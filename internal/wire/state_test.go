package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

// writeSnapshot builds a two-section snapshot exercising every primitive.
func writeSnapshot(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStateWriter(&buf)
	sw.Begin(1)
	sw.Uvarint(0)
	sw.Uvarint(1 << 40)
	sw.Varint(-12345)
	sw.Bool(true)
	sw.String("session-α")
	sw.Bytes([]byte{0xE5, 0x4D, 0x00})
	if err := sw.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	sw.Begin(7)
	sw.String("")
	sw.Varint(9)
	if err := sw.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestStateRoundTrip(t *testing.T) {
	data := writeSnapshot(t)
	sr, err := NewStateReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewStateReader: %v", err)
	}
	kind, err := sr.Next()
	if err != nil || kind != 1 {
		t.Fatalf("Next = %d, %v; want 1, nil", kind, err)
	}
	if v := sr.Uvarint(); v != 0 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := sr.Uvarint(); v != 1<<40 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := sr.Varint(); v != -12345 {
		t.Fatalf("Varint = %d", v)
	}
	if !sr.Bool() {
		t.Fatal("Bool = false")
	}
	if s := sr.String(); s != "session-α" {
		t.Fatalf("String = %q", s)
	}
	if b := sr.Bytes(); !bytes.Equal(b, []byte{0xE5, 0x4D, 0x00}) {
		t.Fatalf("Bytes = %x", b)
	}
	if sr.Remaining() != 0 {
		t.Fatalf("Remaining = %d", sr.Remaining())
	}
	kind, err = sr.Next()
	if err != nil || kind != 7 {
		t.Fatalf("Next = %d, %v; want 7, nil", kind, err)
	}
	if s := sr.String(); s != "" {
		t.Fatalf("String = %q", s)
	}
	if v := sr.Int(); v != 9 {
		t.Fatalf("Int = %d", v)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("Next at end marker = %v; want io.EOF", err)
	}
	if sr.Err() != nil {
		t.Fatalf("Err = %v", sr.Err())
	}
}

// A snapshot truncated at any byte must fail to read completely — it must
// never parse as a valid shorter snapshot.
func TestStateTruncationDetected(t *testing.T) {
	data := writeSnapshot(t)
	for n := 0; n < len(data); n++ {
		sr, err := NewStateReader(bytes.NewReader(data[:n]))
		if err != nil {
			continue // torn magic: rejected at open
		}
		sawEOF := false
		for {
			_, err := sr.Next()
			if err == io.EOF {
				sawEOF = true
				break
			}
			if err != nil {
				break
			}
			// Drain the section so short payloads surface.
			for sr.Remaining() > 0 {
				sr.Bytes()
				if sr.Err() != nil {
					break
				}
			}
		}
		if sawEOF {
			t.Fatalf("truncation at byte %d/%d read as a complete snapshot", n, len(data))
		}
	}
}

func TestStateCorruptionDetected(t *testing.T) {
	data := writeSnapshot(t)
	// Flip one bit inside the first section's payload.
	corrupt := append([]byte(nil), data...)
	corrupt[len(StateMagic)+5] ^= 0x40
	sr, err := NewStateReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("NewStateReader: %v", err)
	}
	if _, err := sr.Next(); err == nil {
		t.Fatal("corrupt section read without error")
	}
}

// AppendFrame + AppendStreamHeader must reproduce a byte-stream the normal
// decoder accepts, and FrameWireSize must account each frame exactly — the
// invariants the rd2d WAL depends on.
func TestAppendFrameRebuildsStream(t *testing.T) {
	tr := sampleTrace()

	var orig bytes.Buffer
	enc := NewEncoder(&orig)
	enc.SetSession("sid-1")
	enc.SetTenant("acme")
	enc.FrameSize = 64 // several frames
	for _, e := range tr.Events {
		if err := enc.WriteEvent(&e); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Capture accepted frames through the hook while decoding.
	d, err := NewDecoder(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	type frame struct {
		kind    byte
		payload []byte
	}
	var frames []frame
	d.OnFrameAccepted = func(kind byte, payload []byte) error {
		frames = append(frames, frame{kind, append([]byte(nil), payload...)})
		return nil
	}
	var want []trace.Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		want = append(want, e)
	}
	if len(frames) == 0 {
		t.Fatal("hook saw no frames")
	}

	// Rebuild: header + hello + the captured frames, verbatim.
	rebuilt := AppendStreamHeader(nil, "sid-1", "acme")
	for _, f := range frames {
		pre := len(rebuilt)
		rebuilt = AppendFrame(rebuilt, f.kind, f.payload)
		if got := len(rebuilt) - pre; got != FrameWireSize(len(f.payload)) {
			t.Fatalf("FrameWireSize(%d) = %d, frame took %d bytes",
				len(f.payload), FrameWireSize(len(f.payload)), got)
		}
	}

	d2, err := NewDecoder(bytes.NewReader(rebuilt))
	if err != nil {
		t.Fatalf("NewDecoder(rebuilt): %v", err)
	}
	if sid, err := d2.ReadHello(); err != nil || sid != "sid-1" {
		t.Fatalf("ReadHello = %q, %v", sid, err)
	}
	if d2.Tenant() != "acme" {
		t.Fatalf("Tenant = %q", d2.Tenant())
	}
	var got []trace.Event
	for {
		e, err := d2.Next()
		if err != nil {
			// No end frame in the rebuilt stream: a bare EOF at a frame
			// boundary is the expected termination.
			if err == io.EOF {
				break
			}
			t.Fatalf("rebuilt Next: %v", err)
		}
		got = append(got, e)
	}
	if len(got) != len(want) {
		t.Fatalf("rebuilt stream has %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() || got[i].Seq != want[i].Seq {
			t.Fatalf("event %d: got %v seq %d, want %v seq %d",
				i, got[i], got[i].Seq, want[i], want[i].Seq)
		}
	}
}

// Decoding the tail of a stream through ResumeDecoder with a mid-stream
// State capture must yield the same events, seqs, and interning resolution
// as the uninterrupted decode.
func TestDecoderStateResume(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	enc.SetSession("s")
	enc.FrameSize = 48
	for _, e := range tr.Events {
		if err := enc.WriteEvent(&e); err != nil {
			t.Fatalf("WriteEvent: %v", err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	full := buf.Bytes()

	// First pass: record each accepted frame's byte offset and the decoder
	// state just before it, via the hook + FrameWireSize accounting.
	d, err := NewDecoder(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	type boundary struct {
		off int
		st  DecoderState
	}
	headerLen := len(AppendStreamHeader(nil, "s", ""))
	off := headerLen
	var bounds []boundary
	d.OnFrameAccepted = func(kind byte, payload []byte) error {
		bounds = append(bounds, boundary{off, d.State()})
		off += FrameWireSize(len(payload))
		return nil
	}
	var want []trace.Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		want = append(want, e)
	}
	if len(bounds) < 2 {
		t.Fatalf("only %d frames; need more for a meaningful resume", len(bounds))
	}

	for _, b := range bounds {
		rd := ResumeDecoder(bytes.NewReader(full[b.off:len(full)-FrameWireSize(0)]), b.st)
		got := want[:b.st.Events:b.st.Events]
		for {
			e, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("resume at %d: Next: %v", b.off, err)
			}
			got = append(got, e)
		}
		if len(got) != len(want) {
			t.Fatalf("resume at %d: %d events, want %d", b.off, len(got), len(want))
		}
		for i := b.st.Events; i < len(want); i++ {
			if got[i].String() != want[i].String() || got[i].Seq != want[i].Seq {
				t.Fatalf("resume at %d: event %d mismatch: %v vs %v", b.off, i, got[i], want[i])
			}
		}
	}
}

// A hook error must fail the decode and stick.
func TestFrameHookErrorSticks(t *testing.T) {
	data := encodeBytes(t, sampleTrace())
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	boom := errors.New("wal full")
	d.OnFrameAccepted = func(byte, []byte) error { return boom }
	if _, err := d.Next(); !errors.Is(err, boom) {
		t.Fatalf("Next = %v; want hook error", err)
	}
	if _, err := d.Next(); !errors.Is(err, boom) {
		t.Fatalf("second Next = %v; want sticky hook error", err)
	}
}
