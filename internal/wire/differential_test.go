package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
)

// TestDifferentialExamples checks, for every committed example trace, that
//
//  1. text → wire → text round-trips byte-identically, and
//  2. serial detection over the streamed wire decoder reports the identical
//     race set as detection over the in-memory trace.Parse result.
func TestDifferentialExamples(t *testing.T) {
	paths, err := filepath.Glob("../../examples/traces/*.trace")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example traces found")
	}
	rep, err := specs.Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.Parse(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}

			// Round trip: canonical text of the parsed trace must survive
			// the wire format exactly.
			var buf bytes.Buffer
			if err := EncodeTrace(&buf, tr); err != nil {
				t.Fatal(err)
			}
			got, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if want, have := trace.Format(tr), trace.Format(got); want != have {
				t.Fatalf("text→wire→text not identical:\nwant:\n%s\nhave:\n%s", want, have)
			}

			objs := map[trace.ObjID]bool{}
			for _, e := range tr.Events {
				if e.Kind == trace.ActionEvent {
					objs[e.Act.Obj] = true
				}
			}

			// In-memory detection over the parsed trace.
			mem := core.New(core.Config{})
			for o := range objs {
				mem.Register(o, rep)
			}
			if err := mem.RunTrace(tr); err != nil {
				t.Fatal(err)
			}

			// Streaming detection over the wire decoder — no trace.Trace
			// is ever materialized on this path.
			d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			str := core.New(core.Config{})
			for o := range objs {
				str.Register(o, rep)
			}
			if err := str.RunSource(d); err != nil {
				t.Fatal(err)
			}

			want, have := mem.Races(), str.Races()
			core.SortRaces(want)
			core.SortRaces(have)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("race sets differ:\nin-memory: %+v\nstreamed:  %+v", want, have)
			}
			if len(want) == 0 && filepath.Base(path) != "locked.trace" && filepath.Base(path) != "dict-locked.trace" {
				t.Logf("note: %s is race-free under dict", path)
			}
		})
	}
}

// TestCommittedBinaryMatchesText pins the committed .rdb artifact to its
// text twin: both must decode to the same canonical trace.
func TestCommittedBinaryMatchesText(t *testing.T) {
	tf, err := os.Open("../../examples/traces/dict-rand.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	text, err := trace.Parse(tf)
	if err != nil {
		t.Fatal(err)
	}

	bf, err := os.Open("../../examples/traces/dict-rand.rdb")
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	bin, err := ParseAny(bf)
	if err != nil {
		t.Fatal(err)
	}

	if want, have := trace.Format(text), trace.Format(bin); want != have {
		t.Fatalf("dict-rand.rdb does not match dict-rand.trace:\nwant:\n%s\nhave:\n%s", want, have)
	}
}
