// Package repro is a from-scratch Go reproduction of "Commutativity Race
// Detection" (Dimitrov, Raychev, Vechev, Koskinen; PLDI 2014).
//
// The library lives under internal/: vclock (vector clocks), trace (the
// execution model), hb (happens-before), ecl (the specification logic and
// the ECL fragment), translate (the ECL → access point translation), ap
// (access point representations), core (the race detector, Algorithm 1),
// fasttrack (the low-level baseline), monitor (the instrumented runtime),
// specs (ready-made specifications), h2sim and snitch (the evaluation
// substrates), and harness (the Table 2 / figure experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate every table and figure; cmd/rd2bench prints them
// in the paper's format.
package repro
