package repro

// The benchmarks in this file regenerate the paper's evaluation artifacts
// as Go benchmarks (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable2/...       — one benchmark per Table 2 row and mode;
//	                            qps is reported as the "qps" metric and
//	                            race totals as "races" / "distinct".
//	BenchmarkFig4/...         — conflict checks for size() after n puts,
//	                            access points vs direct invocations.
//	BenchmarkComplexity/...   — Section 5.4: bounded (Θ(1)/action) vs
//	                            enumerating (Θ(|A|)/action) engines.
//	BenchmarkAblation*        — design-choice ablations called out in
//	                            DESIGN.md §6.
//
// cmd/rd2bench prints the same data in the paper's tabular format.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/harness"
	"repro/internal/monitor"
	"repro/internal/pipeline"
	"repro/internal/snitch"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/vclock"
)

// benchCircuit runs one H2 circuit per iteration in the given mode.
func benchCircuit(b *testing.B, c h2sim.Circuit, mode harness.Mode) {
	b.Helper()
	c = c.Scaled(100)
	var ops, races, distinct int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := monitor.NewRuntime()
		switch mode {
		case harness.FastTrack:
			d := monitor.AttachFastTrack(rt)
			res := c.Run(rt, int64(i))
			ops += res.Ops
			races = d.Stats().Races
			distinct = d.DistinctVars()
		case harness.RD2:
			rd2 := monitor.AttachRD2(rt, core.Config{MaxRaces: 1000})
			res := c.Run(rt, int64(i))
			ops += res.Ops
			races = rd2.Detector.Stats().Races
			distinct = rd2.Detector.DistinctObjects()
		default:
			res := c.Run(rt, int64(i))
			ops += res.Ops
		}
		if err := rt.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "qps")
	if mode != harness.Uninstrumented {
		b.ReportMetric(float64(races), "races")
		b.ReportMetric(float64(distinct), "distinct")
	}
}

// BenchmarkTable2 regenerates every H2 row of Table 2 (experiment E1).
func BenchmarkTable2(b *testing.B) {
	for _, c := range h2sim.Circuits() {
		for _, mode := range []harness.Mode{harness.Uninstrumented, harness.FastTrack, harness.RD2} {
			c, mode := c, mode
			b.Run(fmt.Sprintf("%s/%s", sanitize(c.Name), mode), func(b *testing.B) {
				benchCircuit(b, c, mode)
			})
		}
	}
}

// BenchmarkPipeline compares serial RD2 detection against the sharded
// pipeline at several shard counts on the heaviest H2 circuit (experiment:
// the PR's tentpole). On a multicore host the sharded qps should meet or
// beat serial once shards > 1; at GOMAXPROCS=1 the benchmark mainly
// measures pipeline overhead.
func BenchmarkPipeline(b *testing.B) {
	var circuit h2sim.Circuit
	for _, c := range h2sim.Circuits() {
		if c.Threads >= circuit.Threads {
			circuit = c
		}
	}
	circuit = circuit.Scaled(100)

	run := func(b *testing.B, shards int) {
		b.Helper()
		var ops, races int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt := monitor.NewRuntime()
			if shards == 0 {
				rd2 := monitor.AttachRD2(rt, core.Config{MaxRaces: 1000})
				res := circuit.Run(rt, int64(i))
				ops += res.Ops
				races = rd2.Detector.Stats().Races
			} else {
				par := monitor.AttachRD2Parallel(rt, pipeline.Config{
					Shards: shards, Core: core.Config{MaxRaces: 1000}})
				res := circuit.Run(rt, int64(i))
				if err := par.Close(); err != nil {
					b.Fatal(err)
				}
				ops += res.Ops
				races = par.Pipeline.Stats().Races
			}
			if err := rt.Err(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "qps")
		b.ReportMetric(float64(races), "races")
	}

	b.Run("Serial", func(b *testing.B) { run(b, 0) })
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, n := range counts {
		n := n
		b.Run(fmt.Sprintf("Shards=%d", n), func(b *testing.B) { run(b, n) })
	}
}

// BenchmarkTable2Snitch regenerates the Cassandra row of Table 2.
func BenchmarkTable2Snitch(b *testing.B) {
	cfg := snitch.DefaultTestConfig()
	cfg.TimingsPerHost, cfg.ScoreRounds = 10, 15
	for _, mode := range []harness.Mode{harness.Uninstrumented, harness.FastTrack, harness.RD2} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var races, distinct int
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt := monitor.NewRuntime()
				switch mode {
				case harness.FastTrack:
					d := monitor.AttachFastTrack(rt)
					snitch.RunTest(rt, cfg, int64(i))
					races, distinct = d.Stats().Races, d.DistinctVars()
				case harness.RD2:
					rd2 := monitor.AttachRD2(rt, core.Config{MaxRaces: 1000})
					snitch.RunTest(rt, cfg, int64(i))
					races, distinct = rd2.Detector.Stats().Races, rd2.Detector.DistinctObjects()
				default:
					snitch.RunTest(rt, cfg, int64(i))
				}
				if err := rt.Err(); err != nil {
					b.Fatal(err)
				}
			}
			if mode != harness.Uninstrumented {
				b.ReportMetric(float64(races), "races")
				b.ReportMetric(float64(distinct), "distinct")
			}
		})
	}
}

// fig4Trace builds n concurrent resizing puts followed by one size().
func fig4Trace(n int) *trace.Trace {
	bld := trace.NewBuilder()
	for i := 1; i <= n; i++ {
		bld.Fork(0, vclock.Tid(i))
	}
	for i := 1; i <= n; i++ {
		bld.Put(vclock.Tid(i), 0,
			trace.StrValue(fmt.Sprintf("host%d.com", i)),
			trace.IntValue(int64(i)), trace.NilValue)
	}
	bld.Size(0, 0, int64(n))
	return bld.Trace()
}

// BenchmarkFig4 regenerates the Fig 4 comparison (experiment E3): checking
// size() against n puts needs one conflict check with access points and n
// with whole invocations.
func BenchmarkFig4(b *testing.B) {
	dictSpec := specs.MustSpec("dict")
	dictRep := specs.MustRep("dict")
	for _, n := range []int{3, 10, 100} {
		n := n
		b.Run(fmt.Sprintf("AccessPoints/puts=%d", n), func(b *testing.B) {
			tr := fig4Trace(n)
			b.ReportAllocs()
			var checks int
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{Engine: core.EngineBounded, MaxRaces: 1})
				d.Register(0, dictRep)
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
				checks = d.Stats().Checks
			}
			b.ReportMetric(float64(checks), "checks")
		})
		b.Run(fmt.Sprintf("Invocations/puts=%d", n), func(b *testing.B) {
			tr := fig4Trace(n)
			b.ReportAllocs()
			var checks int
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{Engine: core.EngineEnumerating, MaxRaces: 1})
				d.Register(0, newNaiveDictRep(dictSpec))
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
				checks = d.Stats().Checks
			}
			b.ReportMetric(float64(checks), "checks")
		})
	}
}

// complexityTrace builds n distinct-key puts from two unsynchronized
// threads.
func complexityTrace(n int) *trace.Trace {
	bld := trace.NewBuilder().Fork(0, 1).Fork(0, 2)
	for i := 0; i < n; i++ {
		bld.Put(vclock.Tid(1+i%2), 0, trace.IntValue(int64(i)), trace.IntValue(1), trace.NilValue)
	}
	return bld.Trace()
}

// BenchmarkComplexity regenerates the Section 5.4 scaling claim
// (experiment E4): time per action is constant for the bounded engine and
// linear in |A| for the enumerating engine.
func BenchmarkComplexity(b *testing.B) {
	rep := specs.MustRep("dict")
	for _, n := range []int{1000, 4000, 16000} {
		n := n
		tr := complexityTrace(n)
		b.Run(fmt.Sprintf("Bounded/actions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{Engine: core.EngineBounded, MaxRaces: 1})
				d.Register(0, rep)
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/action")
		})
		b.Run(fmt.Sprintf("Enumerating/actions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{Engine: core.EngineEnumerating, MaxRaces: 1})
				d.Register(0, rep)
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/action")
		})
	}
}

// BenchmarkAblationOptimizedRep compares detection over the optimized
// (Fig 7, four classes) and raw (Section 6.2, unoptimized) translations of
// the dictionary specification.
func BenchmarkAblationOptimizedRep(b *testing.B) {
	spec := specs.MustSpec("dict")
	optimized, err := translate.Translate(spec)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := translate.TranslateOpts(spec, translate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := complexityTrace(4000)
	for _, cfg := range []struct {
		name string
		rep  *translate.Rep
	}{{"Optimized", optimized}, {"Raw", raw}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var active int
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{Engine: core.EngineBounded, MaxRaces: 1})
				d.Register(0, cfg.rep)
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
				active = d.Stats().PeakActive
			}
			b.ReportMetric(float64(cfg.rep.NumClasses()), "classes")
			b.ReportMetric(float64(active), "active-points")
		})
	}
}

// BenchmarkAblationReclaim measures the Section 5.3 object-death
// optimization: many short-lived dictionaries with and without death
// events.
func BenchmarkAblationReclaim(b *testing.B) {
	rep := specs.MustRep("dict")
	const objects, opsPerObject = 64, 32
	build := func(kill bool) *trace.Trace {
		bld := trace.NewBuilder()
		for o := 0; o < objects; o++ {
			for i := 0; i < opsPerObject; i++ {
				bld.Put(0, trace.ObjID(o), trace.IntValue(int64(i)), trace.IntValue(1), trace.NilValue)
			}
			if kill {
				bld.Die(0, trace.ObjID(o))
			}
		}
		return bld.Trace()
	}
	for _, cfg := range []struct {
		name string
		kill bool
	}{{"WithReclaim", true}, {"NoReclaim", false}} {
		cfg := cfg
		tr := build(cfg.kill)
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var peak int
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{MaxRaces: 1})
				for o := 0; o < objects; o++ {
					d.Register(trace.ObjID(o), rep)
				}
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
				peak = d.Stats().ActivePoints
			}
			b.ReportMetric(float64(peak), "live-points")
		})
	}
}

// BenchmarkAblationCoarseSpec compares the precise Fig 6 dictionary
// specification against a coarse "nothing commutes" specification: the
// coarse spec floods the detector with false races.
func BenchmarkAblationCoarseSpec(b *testing.B) {
	precise := specs.MustRep("dict")
	coarse := newCoarseDictRep(b)
	r := trace.NewBuilder().Fork(0, 1).Fork(0, 2)
	for i := 0; i < 2000; i++ {
		r.Get(vclock.Tid(1+i%2), 0, trace.IntValue(int64(i%64)), trace.NilValue)
	}
	tr := r.Trace()
	for _, cfg := range []struct {
		name string
		rep  *translate.Rep
	}{{"Precise", precise}, {"Coarse", coarse}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var races int
			for i := 0; i < b.N; i++ {
				d := core.New(core.Config{MaxRaces: 10})
				d.Register(0, cfg.rep)
				if err := d.RunTrace(tr); err != nil {
					b.Fatal(err)
				}
				races = d.Stats().Races
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// newCoarseDictRep builds a dictionary spec where no pair commutes.
func newCoarseDictRep(b *testing.B) *translate.Rep {
	b.Helper()
	src := `
object dict
method put(k, v) / (p)
method get(k) / (v)
method size() / (r)
commute put(k1, v1)/(p1), put(k2, v2)/(p2) when false
commute put(k1, v1)/(p1), get(k2)/(v2) when false
commute put(k1, v1)/(p1), size()/(r) when false
commute get(k1)/(v1), get(k2)/(v2) when false
commute get(k1)/(v1), size()/(r) when false
commute size()/(r1), size()/(r2) when false
`
	rep, err := translate.Translate(mustSpec(b, src))
	if err != nil {
		b.Fatal(err)
	}
	return rep
}
