package repro

// End-to-end back-end differential over the real workloads (the ISSUE-7
// layout swap): every H2 circuit and the snitch service are run live under
// RD2 with recording on, then the recorded (already stamped) event stream
// is replayed through both the allocation-free core.Detector and the frozen
// map-based core.RefDetector. Verdicts, stats, and distinct-object counts
// must agree exactly — and the offline race count must match what the live
// detector (which additionally compacts after joins) reported.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/monitor"
	"repro/internal/snitch"
	"repro/internal/specs"
)

// replayBoth feeds a recorded, stamped trace to both back-ends with the
// monitored objects registered by kind (as ReplayRecorded does).
func replayBoth(t *testing.T, rt *monitor.Runtime, cfg core.Config) (*core.Detector, *core.RefDetector) {
	t.Helper()
	tr := rt.Trace()
	if tr == nil || len(tr.Events) == 0 {
		t.Fatal("no recorded trace")
	}
	reps := map[string]ap.Rep{}
	for _, name := range specs.Names() {
		reps[name] = specs.MustRep(name)
	}
	d := core.New(cfg)
	ref := core.NewReference(cfg)
	for _, ok := range rt.ObjectKinds() {
		if rep, found := reps[ok.Kind]; found {
			d.Register(ok.Obj, rep)
			ref.Register(ok.Obj, rep)
		}
	}
	for i := range tr.Events {
		if err := d.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Process(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	d.FlushObs()
	return d, ref
}

func compareReplayed(t *testing.T, d *core.Detector, ref *core.RefDetector) {
	t.Helper()
	if ds, rs := d.Stats(), ref.Stats(); ds != rs {
		t.Fatalf("stats diverge:\n  layout %+v\n  map    %+v", ds, rs)
	}
	if dd, rd := d.DistinctObjects(), ref.DistinctObjects(); dd != rd {
		t.Fatalf("distinct objects: layout %d, map %d", dd, rd)
	}
	got, want := d.Races(), ref.Races()
	if len(got) != len(want) {
		t.Fatalf("race counts: layout %d, map %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("race %d diverges:\n  layout %+v\n  map    %+v", i, got[i], want[i])
		}
	}
}

// TestDifferentialBackendH2Workloads replays every H2 circuit's recorded
// stream through both back-ends.
func TestDifferentialBackendH2Workloads(t *testing.T) {
	cfg := core.Config{MaxRaces: 1 << 20}
	for _, c := range h2sim.Circuits() {
		c := c.Scaled(10)
		t.Run(sanitize(c.Name), func(t *testing.T) {
			rt := monitor.NewRuntime()
			rt.Record()
			live := monitor.AttachRD2(rt, cfg)
			c.Run(rt, 7)
			if err := rt.Err(); err != nil {
				t.Fatal(err)
			}
			d, ref := replayBoth(t, rt, cfg)
			compareReplayed(t, d, ref)
			// The live detector compacted after joins; compaction preserves
			// verdicts, so the race count must still agree.
			if lr, dr := live.Detector.Stats().Races, d.Stats().Races; lr != dr {
				t.Fatalf("live detector found %d races, offline replay %d", lr, dr)
			}
		})
	}
}

// TestDifferentialBackendSnitch replays the snitch service workload — the
// paper's standout real-world subject — through both back-ends at several
// seeds.
func TestDifferentialBackendSnitch(t *testing.T) {
	cfg := core.Config{MaxRaces: 1 << 20}
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rt := monitor.NewRuntime()
			rt.Record()
			live := monitor.AttachRD2(rt, cfg)
			snitch.RunTest(rt, snitch.DefaultTestConfig(), seed)
			if err := rt.Err(); err != nil {
				t.Fatal(err)
			}
			d, ref := replayBoth(t, rt, cfg)
			compareReplayed(t, d, ref)
			if lr, dr := live.Detector.Stats().Races, d.Stats().Races; lr != dr {
				t.Fatalf("live detector found %d races, offline replay %d", lr, dr)
			}
		})
	}
}
