package repro

import (
	"strings"
	"testing"

	"repro/internal/ap"
	"repro/internal/ecl"
	"repro/internal/trace"
)

// sanitize turns a circuit name into a benchmark-path-friendly token.
func sanitize(name string) string {
	name = strings.ReplaceAll(name, " ", "_")
	name = strings.ReplaceAll(name, "(", "")
	name = strings.ReplaceAll(name, ")", "")
	name = strings.ReplaceAll(name, ".", "")
	return name
}

// newNaiveDictRep wraps the dictionary specification as an unbounded
// one-point-per-invocation representation (the direct approach).
func newNaiveDictRep(spec *ecl.Spec) ap.Rep {
	return ap.NewNaiveRep(func(a, b trace.Action) bool {
		ok, err := spec.Commutes(a, b)
		return err == nil && ok
	})
}

// mustSpec parses a spec source or fails the benchmark.
func mustSpec(tb testing.TB, src string) *ecl.Spec {
	tb.Helper()
	s, err := ecl.ParseSpec(src)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}
