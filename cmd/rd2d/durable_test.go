package main

// Durable-session tests (DESIGN.md §15): a daemon "crash" here is a daemon
// that is simply abandoned — no Shutdown, no listener close, nothing
// flushed or finalized — so its on-disk state is exactly what a SIGKILL
// would leave behind (its goroutines leak for the test binary's lifetime,
// which is the price of an in-process crash). A second daemon rehydrates
// the same state dir and the resumed stream must reproduce the verdicts of
// an uninterrupted run, down to the JSONL race records and their per-session
// seq numbering — including when the snapshot is torn or the WAL tail is
// truncated between the two lives.

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// encodeSession encodes tr as a resumable session stream (no end frame).
func encodeSession(t *testing.T, tr *trace.Trace, sid string, frameSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.FrameSize = frameSize
	if err := enc.SetSession(sid); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// severInto writes data into addr, half-closes, and drains acks until the
// daemon parks the session and closes the connection — a deterministic
// mid-stream connection loss.
func severInto(t *testing.T, addr string, data []byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(data); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	io.Copy(io.Discard, conn)
}

// waitParked blocks until sid's session is parked with a drained queue,
// plus a beat for the worker to finish its in-flight event and checkpoint.
func waitParked(t *testing.T, d *daemon, sid string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		s := d.sessions[sid]
		d.mu.Unlock()
		if s != nil {
			s.mu.Lock()
			parked := s.state == stateParked
			s.mu.Unlock()
			if parked && len(s.queue) == 0 {
				time.Sleep(100 * time.Millisecond)
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("session never parked")
}

func waitFile(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never appeared", path)
}

func waitGone(t *testing.T, path string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never removed", path)
}

// durableRestartDiff is the crash/restart differential: stream a prefix
// into a durable daemon, crash it, optionally corrupt the on-disk state,
// rehydrate a second daemon over the same state dir, resume with a fresh
// client, and hold summary plus JSONL verdicts to an uninterrupted
// baseline run of the same worker mode.
func durableRestartDiff(t *testing.T, mode string, corrupt func(t *testing.T, sdir, sid string)) {
	tr, _ := racyTrace(t)
	const sid = "dur"
	modeCfg := func(c *daemonConfig) {
		switch mode {
		case "chunked":
			c.stampWorkers = 2
		case "fleet":
			c.fleet = true
		}
		c.obsRoot = obs.NewRegistry()
	}

	data := encodeSession(t, tr, sid, 1<<20) // probe: one big frame
	frameSize := len(data) / 6
	if frameSize < 64 {
		frameSize = 64
	}
	data = encodeSession(t, tr, sid, frameSize)
	cut := len(data) * 3 / 5

	// Baseline: same mode, no state dir, unsevered.
	var baseReport bytes.Buffer
	bd, bdone := testDaemonCfg(t, &baseReport, modeCfg)
	brc, err := wire.DialSession(bd.Addr(), sid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	brc.SetFrameSize(frameSize)
	if err := brc.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	baseSum, err := brc.Close(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bd.Shutdown()
	if err := <-bdone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if baseSum.Error != "" || !baseSum.Clean || baseSum.Events != tr.Len() {
		t.Fatalf("baseline summary %+v, want clean over %d events", baseSum, tr.Len())
	}
	baseRaces := raceLines(t, &baseReport)

	// Phase 1: partial stream into the durable daemon, then crash it.
	stateDir := t.TempDir()
	reportPath := filepath.Join(t.TempDir(), "report.jsonl")
	rep1, err := os.Create(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := testDaemonCfg(t, nil, func(c *daemonConfig) {
		modeCfg(c)
		c.stateDir = stateDir
		c.ckptEvery = 4
		c.resumeTTL = time.Hour
		c.reporter = core.NewReportWriter(rep1)
	})
	severInto(t, d1.Addr(), data[:cut])
	waitParked(t, d1, sid)
	sdir := filepath.Join(stateDir, sid)
	waitFile(t, filepath.Join(sdir, "wal"))
	waitFile(t, filepath.Join(sdir, "snap.ckpt"))
	rep1.Close()
	// Crash: abandon d1. Its parked session, open WAL fd, and TTL timer
	// leak; the state dir holds whatever was durable at this instant.

	if corrupt != nil {
		corrupt(t, sdir, sid)
	}

	// Phase 2: rehydrate a fresh daemon over the same state dir and resume.
	seqs, err := scanReport(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := os.OpenFile(reportPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	d2, done2 := testDaemonCfg(t, nil, func(c *daemonConfig) {
		modeCfg(c)
		c.stateDir = stateDir
		c.ckptEvery = 4
		c.resumeTTL = time.Hour
		c.reporter = core.NewReportWriter(rep2)
		c.reportSeqs = seqs
	})
	d2.rehydrate()
	d2.mu.Lock()
	_, rehydrated := d2.sessions[sid]
	d2.mu.Unlock()
	if !rehydrated {
		t.Fatal("session not rehydrated from the state dir")
	}

	// A fresh client resends the whole stream with the same chunking; the
	// rehydrated decoder state deduplicates the already-ingested prefix.
	rc, err := wire.DialSession(d2.Addr(), sid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rc.SetFrameSize(frameSize)
	if err := rc.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := rc.Close(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d2.Shutdown()
	if err := <-done2; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	if sum.Error != "" || !sum.Clean || sum.Degraded {
		t.Fatalf("resumed summary %+v, want clean undegraded", sum)
	}
	if sum.Events != tr.Len() {
		t.Fatalf("resumed session analyzed %d events, want %d (no loss, no duplication)", sum.Events, tr.Len())
	}
	if sum.Races != baseSum.Races {
		t.Fatalf("resumed session found %d races, baseline %d", sum.Races, baseSum.Races)
	}
	if sum.Resumes < 1 {
		t.Fatalf("resumed session reports %d resumes, want >= 1", sum.Resumes)
	}

	// The JSONL report across both daemon lives must match the baseline
	// record-for-record, with dense per-session seq numbering (raceLines
	// checks density, so a replay that re-emitted or skipped records fails
	// here even before the content comparison).
	reportData, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	got := raceLines(t, bytes.NewBuffer(reportData))
	if len(got) != len(baseRaces) {
		t.Fatalf("%d race records across the restart, baseline %d", len(got), len(baseRaces))
	}
	for i := range got {
		if got[i] != baseRaces[i] {
			t.Fatalf("race record %d differs:\n  restarted: %s\n  baseline:  %s", i, got[i], baseRaces[i])
		}
	}

	// A cleanly completed session's durability obligation is over.
	waitGone(t, sdir)
}

// TestDurableRestartDifferential runs the crash/restart differential in
// every worker mode: the serial pipeline worker, the chunked two-pass
// stamping worker, and fleet quanta on the shared pool.
func TestDurableRestartDifferential(t *testing.T) {
	for _, mode := range []string{"serial", "chunked", "fleet"} {
		t.Run(mode, func(t *testing.T) { durableRestartDiff(t, mode, nil) })
	}
}

// TestDurableTornSnapshotRecovery flips a bit in the snapshot between the
// crash and the restart (a machine-crash artifact tmp+rename cannot
// prevent). The CRC rejects it, recovery replays the WAL from byte zero,
// and the verdicts still match the baseline.
func TestDurableTornSnapshotRecovery(t *testing.T) {
	durableRestartDiff(t, "serial", func(t *testing.T, sdir, _ string) {
		if err := faultinject.FlipFileBits(filepath.Join(sdir, "snap.ckpt"), 7, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableTruncatedWALRecovery removes the snapshot and truncates the
// WAL mid-stream: genesis replay hits the torn tail, truncates it, and the
// resuming client's resend covers everything the cut lost (those frames'
// acks died with the daemon or are resent anyway by a fresh client).
func TestDurableTruncatedWALRecovery(t *testing.T) {
	durableRestartDiff(t, "serial", func(t *testing.T, sdir, sid string) {
		if err := os.Remove(filepath.Join(sdir, "snap.ckpt")); err != nil {
			t.Fatal(err)
		}
		hdr := len(wire.AppendStreamHeader(nil, sid, "default"))
		if err := faultinject.TruncateFile(filepath.Join(sdir, "wal"), 11, hdr+1); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableSnapshotBeyondWALRecovery keeps a valid snapshot but cuts the
// WAL below the offset it references (a machine crash that lost WAL pages
// after the snapshot renamed into place). The loader must treat the
// snapshot as torn and fall back to genesis replay rather than seeking
// past the end of the file.
func TestDurableSnapshotBeyondWALRecovery(t *testing.T) {
	durableRestartDiff(t, "serial", func(t *testing.T, sdir, sid string) {
		meta, _, _, err := loadSnapshot(filepath.Join(sdir, "snap.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		hdr := int64(len(wire.AppendStreamHeader(nil, sid, "default")))
		cut := meta.WalOff - 1
		if cut <= hdr {
			t.Fatalf("snapshot wal offset %d leaves no room below it", meta.WalOff)
		}
		if err := os.Truncate(filepath.Join(sdir, "wal"), cut); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableExpiredStateGC ages a crashed session's state past the resume
// TTL: rehydration must garbage-collect it instead of resurrecting a
// session whose client has long given up — and a brand-new session under
// the same id must start a clean first life (fresh seq numbering, full
// verdicts).
func TestDurableExpiredStateGC(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	const sid = "dur-expired"
	data := encodeSession(t, tr, sid, 256)

	stateDir := t.TempDir()
	d1, _ := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.obsRoot = obs.NewRegistry()
		c.stateDir = stateDir
		c.ckptEvery = 4
		c.resumeTTL = time.Hour
	})
	severInto(t, d1.Addr(), data[:len(data)*3/5])
	waitParked(t, d1, sid)
	sdir := filepath.Join(stateDir, sid)
	waitFile(t, filepath.Join(sdir, "wal"))
	// Crash d1, then age the state two hours into the past.
	old := time.Now().Add(-2 * time.Hour)
	for _, name := range []string{"wal", "snap.ckpt"} {
		p := filepath.Join(sdir, name)
		if _, err := os.Stat(p); err == nil {
			if err := os.Chtimes(p, old, old); err != nil {
				t.Fatal(err)
			}
		}
	}

	var report bytes.Buffer
	d2, done2 := testDaemonCfg(t, &report, func(c *daemonConfig) {
		c.obsRoot = obs.NewRegistry()
		c.stateDir = stateDir
		c.resumeTTL = time.Minute
	})
	d2.rehydrate()
	if _, err := os.Stat(sdir); !os.IsNotExist(err) {
		t.Fatalf("expired state dir %s survived rehydration", sdir)
	}
	d2.mu.Lock()
	_, resurrected := d2.sessions[sid]
	d2.mu.Unlock()
	if resurrected {
		t.Fatal("expired session resurrected into the session table")
	}

	// The same sid starts a fresh life: full verdicts, seq from 1.
	rc, err := wire.DialSession(d2.Addr(), sid, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := rc.Close(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d2.Shutdown()
	if err := <-done2; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if sum.Error != "" || !sum.Clean || sum.Races != wantRaces || sum.Events != tr.Len() {
		t.Fatalf("fresh-life summary %+v, want clean %d races over %d events", sum, wantRaces, tr.Len())
	}
	if got := raceLines(t, &report); len(got) != wantRaces {
		t.Fatalf("fresh life wrote %d race records, want %d (stale seq suppression leaked?)", len(got), wantRaces)
	}
}

// TestDurableLiveTTLDestroysState: when a parked durable session's resume
// TTL expires in a live daemon, finalize must remove its state dir — the
// durability obligation ends with the session.
func TestDurableLiveTTLDestroysState(t *testing.T) {
	tr, _ := racyTrace(t)
	const sid = "dur-ttl"
	data := encodeSession(t, tr, sid, 256)

	stateDir := t.TempDir()
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.obsRoot = obs.NewRegistry()
		c.stateDir = stateDir
		c.ckptEvery = 4
		c.resumeTTL = 300 * time.Millisecond
	})
	severInto(t, d.Addr(), data[:len(data)*3/5])
	waitGone(t, filepath.Join(stateDir, sid))
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDurableSnapshotCodecRoundTrip pins the snapshot serialization: every
// field of the metadata, engine, and detector sections survives a write →
// load cycle, including nil vector clocks (epoch form) and nil values.
func TestDurableSnapshotCodecRoundTrip(t *testing.T) {
	meta := snapMeta{
		SID: "s-1", Tenant: "acme", Spec: "dict",
		Events: 42, WalOff: 1234, Resumes: 2, ReporterSeq: 7,
		Registered: []trace.ObjID{1, 3, 9},
		DecState: wire.DecoderState{
			Version: 2, SID: "s-1", Tenant: "acme",
			Intern: []string{"put", "get"},
			Events: 42, Frames: 5, ExpectChunk: 6, SeenChunk: true,
			DupChunks: 1, SkippedBytes: 10, SkippedFrames: 2, Resyncs: 1,
		},
	}
	en := &hb.EngineState{
		Threads: []hb.ThreadClock{
			{Seen: true, Clock: vclock.VC{1, 2, 3}},
			{Seen: true, Dead: true, Clock: vclock.VC{0, 5}},
			{}, // never seen: nil clock
		},
		Locks: []hb.LockClock{{Lock: 1, Clock: vclock.VC{4}}},
		Chans: []hb.ChanClocks{{Chan: 2, Queue: []vclock.VC{{1}, {2, 2}}}},
	}
	det := &core.DetectorState{
		Objects: []core.ObjectExport{{Obj: 1, Points: []core.PointExport{
			{
				Pt:    ap.Point{Class: 1, Val: trace.IntValue(5)},
				Epoch: vclock.Epoch{T: 1, C: 3},
				LastAct: trace.Action{
					Obj: 1, Method: "put",
					Args: []trace.Value{trace.IntValue(1), trace.StrValue("x"), trace.NilValue},
					Rets: []trace.Value{trace.BoolValue(true)},
				},
				LastThread: 2, LastSeq: 17,
			},
			{
				Pt: ap.Point{Class: 2, Val: trace.StrValue("k")},
				VC: vclock.VC{3, 1},
			},
		}}},
		RacyObjs: []trace.ObjID{1},
		DeadRacy: 1,
		Stats: core.Stats{
			Actions: 10, Checks: 9, Races: 1, RacyEvents: 2,
			ActivePoints: 2, PeakActive: 3, Reclaimed: 4,
		},
	}

	var buf bytes.Buffer
	if err := writeSnapshot(&buf, &meta, en, det); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	gm, gen, gdet, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gm, meta) {
		t.Errorf("meta round trip:\n got %+v\nwant %+v", *gm, meta)
	}
	if !reflect.DeepEqual(gen, en) {
		t.Errorf("engine round trip:\n got %+v\nwant %+v", gen, en)
	}
	if !reflect.DeepEqual(gdet, det) {
		t.Errorf("detector round trip:\n got %+v\nwant %+v", gdet, det)
	}

	// Any corruption — a flipped bit anywhere, a truncated tail, an empty
	// file — must be rejected, never half-loaded.
	data := buf.Bytes()
	for _, off := range []int{1, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := loadSnapshot(path); err == nil {
			t.Errorf("bit flip at offset %d loaded without error", off)
		}
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadSnapshot(path); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadSnapshot(path); err == nil {
		t.Error("empty snapshot loaded without error")
	}
}

// TestScanReport pins the report-file recovery scan: per-session high-water
// seqs, degraded notes skipped, and a torn final line truncated in place.
func TestScanReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.jsonl")
	if seqs, err := scanReport(path); err != nil || len(seqs) != 0 {
		t.Fatalf("missing report: seqs=%v err=%v, want empty, nil", seqs, err)
	}
	content := `{"session":"a","seq":1,"object":1}
{"session":"a","seq":2,"object":2}
{"note":"degraded","session":"a","seq":9}
{"session":"b","seq":1,"object":3}
{"session":"a","seq":3,"obj`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	seqs, err := scanReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if seqs["a"] != 2 || seqs["b"] != 1 || len(seqs) != 2 {
		t.Fatalf("seqs = %v, want a:2 b:1 (note skipped, torn line dropped)", seqs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"seq":3`)) || data[len(data)-1] != '\n' {
		t.Fatalf("torn line not truncated: %q", data)
	}
}

// TestHealthzPhases checks the /healthz readiness surface: 200 only while
// serving, 503 with the phase name during rehydration and drain.
func TestHealthzPhases(t *testing.T) {
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.obsRoot = obs.NewRegistry()
	})
	h := d.httpHandler()
	get := func() (int, string) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		return rr.Code, rr.Body.String()
	}
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("serving healthz = %d %q, want 200 ok", code, body)
	}
	d.phase.Store(phaseRehydrating)
	if code, body := get(); code != http.StatusServiceUnavailable || !bytes.Contains([]byte(body), []byte("rehydrating")) {
		t.Fatalf("rehydrating healthz = %d %q, want 503 rehydrating", code, body)
	}
	d.phase.Store(phaseServing)
	d.Shutdown()
	if code, body := get(); code != http.StatusServiceUnavailable || !bytes.Contains([]byte(body), []byte("draining")) {
		t.Fatalf("draining healthz = %d %q, want 503 draining", code, body)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
