package main

// Fleet-mode session execution. With -fleet a session owns no worker
// goroutine and no per-session pipeline shards: its detection state is a
// single serial core.Detector plus the incremental happens-before
// engine, and the work happens in quanta — non-blocking drains of the
// session's ingest queue — executed by internal/fleet's shared worker
// pool under deficit-round-robin tenant scheduling. One worker runs an
// entry at a time and every quantum hand-off goes through the scheduler
// mutex, so the runner's state stays as goroutine-confined as the
// per-conn worker's even though quanta hop between workers.
//
// Verdicts are byte-identical to the per-conn path: the same engine
// stamps events in the same order, the same detector algorithm sees
// them, and races stream through the same OnRace reporter hook (ci.sh
// -fleet holds the two modes to a normalized JSONL diff).

import (
	"fmt"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
)

// fleetRunner adapts one session to fleet.Runnable.
type fleetRunner struct {
	s    *session
	det  *core.Detector
	skel *obs.Span
	stamp *obs.Span

	sinceCompact int
	dead         bool // worker-equivalent panic: drain without processing
	finished     bool
}

// startFleet wires a new session into the shared scheduler instead of
// starting a private worker: serial detector, run-queue entry. Fleet
// sessions always stamp serially — quanta are small and the two-pass
// chunked stamper's win comes from large drains the DRR grant forbids.
func (s *session) startFleet(ccfg core.Config) {
	r := &fleetRunner{
		s:     s,
		det:   core.New(ccfg),
		skel:  s.scope.Span(obs.StageSkeleton),
		stamp: s.scope.Span(obs.StageStamp),
	}
	s.runner = r
	s.applyRestore()
	s.entry = s.d.sched.Register(s.tenant, r)
}

// RunQuantum drains up to n events from the session queue, never
// blocking: when the queue runs dry it yields (used, false) and relies
// on the read loop's per-enqueue Wake; when the queue is closed it
// collects final results and closes s.done. A panic in detection is
// recovered here the way session.work recovers it — degrade, keep
// draining — so one poisoned session cannot take down a shared worker
// or wedge its producer's read loop.
func (r *fleetRunner) RunQuantum(n int) (used int, more bool) {
	s := r.s
	if r.finished {
		return 0, false
	}
	defer func() {
		if p := recover(); p != nil {
			r.dead = true
			s.panicked = true
			s.degraded = true
			obsSessionPanics.Inc()
			s.logf("recovered worker panic at event %s: %v\n%s", s.lastEv, p, debug.Stack())
			more = true // reschedule: later quanta drain the rest of the stream
		}
		if !r.finished {
			s.entry.SetArenaBytes(r.det.ArenaBytes())
		}
	}()
	for used < n {
		select {
		case e, ok := <-s.queue:
			if !ok {
				r.finish()
				return used, false
			}
			used++
			r.process(&e)
		default:
			return used, false
		}
	}
	return used, true
}

// process runs one event: the per-event body of session.workSerial and
// session.dispatch, against the serial detector instead of the pipeline.
func (r *fleetRunner) process(e *trace.Event) {
	s := r.s
	if r.dead {
		return // post-panic drain: not analyzed, not counted (as per-conn)
	}
	// Quantum execution is serialized by the scheduler, so the runner sits
	// at a frame boundary between events exactly like the serial worker.
	s.maybeCheckpoint()
	s.events++
	r.sinceCompact++
	if s.procErr != nil {
		return // drain
	}
	s.lastEv = e.String()
	if k := s.d.cfg.injectWorkerPanic; k > 0 && s.events == k {
		panic(fmt.Sprintf("faultinject: injected worker panic at event %d", k))
	}
	sp := r.skel
	if hb.IsBodyEvent(e.Kind) {
		sp = r.stamp
	}
	start := sp.Start()
	_, err := s.en.Process(e)
	sp.End(start, 1)
	if err != nil {
		s.procErr = fmt.Errorf("event %d (%s): %w", e.Seq, e.String(), err)
		return
	}
	if e.Kind == trace.ActionEvent && !s.registered[e.Act.Obj] {
		rep, _ := s.d.repFor(e.Act.Obj)
		if s.wrapRep != nil {
			rep = s.wrapRep(rep)
		}
		r.det.Register(e.Act.Obj, rep)
		s.registered[e.Act.Obj] = true
	}
	if perr := r.det.Process(e); perr != nil && s.procErr == nil {
		s.procErr = fmt.Errorf("event %d (%s): %w", e.Seq, e.String(), perr)
		return
	}
	if e.Kind == trace.JoinEvent && s.d.cfg.compactOps > 0 && r.sinceCompact >= s.d.cfg.compactOps {
		r.det.Compact(s.en.MeetLive())
		r.sinceCompact = 0
	}
}

// finish harvests the detector once the queue closes and publishes the
// results through s.done — the fleet-mode equivalent of session.collect.
// The collect guard applies here too: a detector that dies flushing
// still yields its honest partial counts.
func (r *fleetRunner) finish() {
	if r.finished {
		return
	}
	r.finished = true
	s := r.s
	func() {
		defer func() {
			if p := recover(); p != nil {
				s.panicked = true
				s.degraded = true
				obsSessionPanics.Inc()
				s.logf("recovered panic collecting results: %v\n%s", p, debug.Stack())
			}
		}()
		r.det.FlushObs()
		s.races = r.det.Stats().Races
	}()
	s.entry.SetArenaBytes(r.det.ArenaBytes())
	close(s.done)
}
