// Command rd2d is the online commutativity race detection daemon: the
// streaming counterpart of cmd/rd2. It listens on TCP for RDB2 binary
// trace streams (internal/wire), runs one detection session per
// connection — incremental happens-before stamping feeding the sharded
// detection pipeline — and reports races as they are found, while the
// monitored program is still running.
//
//	rd2d -listen 127.0.0.1:7029 -spec dict -report races.jsonl -http :6060
//
// Producers stream events with `rd2 -trace run.trace -send addr` (replay
// an existing trace), `tracegen -wire` piped over the network, or any
// writer of the wire format (wire.Client). Each session is acknowledged
// with a one-line JSON summary {"events":N,"races":M,"clean":true}.
//
// Production shape: per-connection ingest queues are bounded — when
// detection falls behind, the socket blocks and TCP flow control pushes
// back on the producer instead of buffering without limit; reads carry an
// idle timeout; SIGTERM/SIGINT drains gracefully (in-flight sessions stop
// ingesting, flush their pending shards, and write complete reports before
// the process exits). -http serves /metrics with ingest counters (frames,
// bytes, events, queue depth, backpressure stalls) next to the detector
// metrics.
//
// The exit status is 1 when any session found races, 2 on startup errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/ecl"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/translate"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rd2d", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7029", "TCP address to accept wire streams on")
	specName := fs.String("spec", "dict", "default specification: built-in name or file path")
	bind := fs.String("bind", "", "per-object specs, e.g. 0=dict,3=set")
	engine := fs.String("engine", "bounded", "conflict engine: bounded or enumerating")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "detection shards per session")
	stampWorkers := fs.Int("stampworkers", 1,
		"happens-before stamping workers per session; >=2 stamps ingest chunks with the two-pass parallel engine")
	maxRaces := fs.Int("max-races", 100, "maximum races retained per session")
	queueLen := fs.Int("queue", 1024, "per-connection ingest queue depth in events")
	idleTimeout := fs.Duration("idle-timeout", 30*time.Second, "per-read idle timeout (0 disables)")
	writeTimeout := fs.Duration("write-timeout", DefaultWriteTimeout, "summary/ack write deadline (also applied to the -report writer when it supports deadlines)")
	resumeTTL := fs.Duration("resume-ttl", DefaultResumeTTL, "how long a resumable session survives a lost connection")
	resync := fs.Bool("resync", false, "corruption resync: skip corrupt frames and continue (session reports degraded)")
	stateDir := fs.String("statedir", "", "persist resumable sessions here (crash-safe checkpoint/restore across daemon restarts)")
	ckptEvery := fs.Int("ckpt-every", DefaultCkptEvery, "with -statedir: snapshot a durable session at most once per this many events")
	fsyncMode := fs.String("fsync", "ckpt", "with -statedir: off (safe against process crashes only), ckpt (fsync WAL and snapshot at checkpoints), always (also fsync every WAL append)")
	inject := fs.String("inject", "", "fault injection for chaos testing, e.g. rep-panic:100 or worker-panic:50")
	compactOps := fs.Int("compact-every", 4096, "compact reclaimable detector state at most once per this many events (0 disables; compaction may trim dead-thread entries from reported point clocks)")
	fleetMode := fs.Bool("fleet", false, "multi-tenant fleet scheduling: run sessions as quanta on a shared worker pool with per-tenant deficit-round-robin fairness (sessions stamp serially; -shards and -stampworkers apply only to per-conn mode)")
	fleetWorkers := fs.Int("fleet-workers", 0, "fleet worker pool size (with -fleet; 0 = GOMAXPROCS)")
	fleetQuantum := fs.Int("fleet-quantum", 0, "events granted per tenant scheduling round (0 = built-in default)")
	maxSessions := fs.Int("max-sessions", 0, "reject new sessions beyond this resident count with a retryable busy summary (0 = unbounded; enforced with or without -fleet)")
	globalRate := fs.Float64("global-events-per-sec", 0, "daemon-wide ingest budget; resident sessions overdraft it, but new sessions are rejected busy while it is overdrawn (0 = unlimited)")
	tenantQuota := fs.String("tenant-quota", "",
		"per-tenant quotas: 'name:events=5000,burst=500,sessions=4,arena=64MB;...' (name 'default' sets the quota for unlisted tenants)")
	reportPath := fs.String("report", "", "stream structured race records (JSON Lines) to this file")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (enables metrics)")
	statsInterval := fs.Duration("stats-interval", 0, "emit a metrics snapshot to stderr at this interval (enables metrics)")
	statsJSON := fs.Bool("stats-json", false, "emit -stats-interval snapshots as JSON instead of text")
	quiet := fs.Bool("q", false, "log only startup and shutdown, not per-session lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger := log.New(os.Stderr, "rd2d: ", 0)
	cfg := daemonConfig{
		defaultSpec:  *specName,
		shards:       *shards,
		stampWorkers: *stampWorkers,
		maxRaces:     *maxRaces,
		queueLen:     *queueLen,
		idleTimeout:  *idleTimeout,
		writeTimeout: *writeTimeout,
		resumeTTL:    *resumeTTL,
		resync:       *resync,
		stateDir:     *stateDir,
		ckptEvery:    *ckptEvery,
		compactOps:   *compactOps,
		logger:       logger,
		fleet:        *fleetMode,
		fleetWorkers: *fleetWorkers,
		fleetQuantum: *fleetQuantum,
		maxSessions:  *maxSessions,
		globalRate:   *globalRate,
	}
	if *tenantQuota != "" {
		def, quotas, err := parseTenantQuotas(*tenantQuota)
		if err != nil {
			logger.Printf("%v", err)
			return 2
		}
		cfg.defaultQuota = def
		cfg.tenantQuotas = quotas
	}
	if *quiet {
		cfg.logger = nil
	}
	var err error
	if cfg.fsyncMode, err = parseFsyncMode(*fsyncMode); err != nil {
		logger.Printf("%v", err)
		return 2
	}
	if *inject != "" {
		if err := parseInject(*inject, &cfg); err != nil {
			logger.Printf("%v", err)
			return 2
		}
		logger.Printf("fault injection armed: %s", *inject)
	}

	if cfg.defaultRep, err = loadRep(*specName); err != nil {
		logger.Printf("%v", err)
		return 2
	}
	cfg.binds = map[trace.ObjID]ap.Rep{}
	cfg.bindSpecs = map[trace.ObjID]string{}
	if *bind != "" {
		for _, pair := range strings.Split(*bind, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				logger.Printf("bad -bind entry %q", pair)
				return 2
			}
			id, err := strconv.Atoi(kv[0])
			if err != nil {
				logger.Printf("bad object id %q", kv[0])
				return 2
			}
			rep, err := loadRep(kv[1])
			if err != nil {
				logger.Printf("%v", err)
				return 2
			}
			cfg.binds[trace.ObjID(id)] = rep
			cfg.bindSpecs[trace.ObjID(id)] = kv[1]
		}
	}
	switch *engine {
	case "bounded":
		cfg.engine = core.EngineBounded
	case "enumerating":
		cfg.engine = core.EngineEnumerating
	default:
		logger.Printf("unknown engine %q", *engine)
		return 2
	}

	if *httpAddr != "" || *statsInterval > 0 {
		obs.SetEnabled(true)
	}

	var reportFile *os.File
	if *reportPath != "" {
		if *stateDir != "" {
			// Durable mode appends: prior sessions' records survive the
			// restart, and scanReport recovers each session's high-water
			// seq (truncating a torn last line) so rehydrated reporters
			// suppress replayed records instead of duplicating them.
			seqs, serr := scanReport(*reportPath)
			if serr != nil {
				logger.Printf("report: %v", serr)
				return 2
			}
			cfg.reportSeqs = seqs
			reportFile, err = os.OpenFile(*reportPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		} else {
			reportFile, err = os.Create(*reportPath)
		}
		if err != nil {
			logger.Printf("%v", err)
			return 2
		}
		defer reportFile.Close()
		cfg.reporter = core.NewReportWriter(&deadlineWriter{f: reportFile, d: *writeTimeout})
	}

	d, err := newDaemon(*listen, cfg)
	if err != nil {
		logger.Printf("%v", err)
		return 2
	}
	if *httpAddr != "" {
		srv, err := obs.ServeHandler(*httpAddr, d.httpHandler())
		if err != nil {
			logger.Printf("%v", err)
			return 2
		}
		defer srv.Close()
		logger.Printf("metrics on http://%s/metrics, sessions on /sessions", srv.Addr())
	}
	if *statsInterval > 0 {
		if *statsJSON {
			em := obs.StartEmitter(os.Stderr, obs.Default, *statsInterval, true)
			defer em.Stop()
		} else {
			defer d.startStatsTable(os.Stderr, *statsInterval)()
		}
	}
	if *stateDir != "" {
		// Rehydrate before serving: the listener is bound (connections
		// queue in the accept backlog) and /healthz answers 503
		// "rehydrating" until every checkpointed session is parked again.
		d.phase.Store(phaseRehydrating)
		d.rehydrate()
		d.phase.Store(phaseServing)
	}
	logger.Printf("listening on %s (spec %s, %d shards)", d.Addr(), *specName, *shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("%v: draining...", s)
		d.Shutdown()
	}()

	if err := d.Serve(); err != nil {
		logger.Printf("%v", err)
		return 2
	}
	// All sessions drained: the report is complete.
	if cfg.reporter != nil {
		if err := cfg.reporter.Err(); err != nil {
			logger.Printf("report: %v", err)
			return 2
		}
		logger.Printf("%d race records written to %s", cfg.reporter.Count(), *reportPath)
	}
	logger.Printf("drained: %d sessions, %d events, %d races, %d failed, %d degraded",
		d.sessionSeq.Load(), d.totalEvents.Load(), d.totalRaces.Load(), d.failed.Load(), d.degraded.Load())
	if d.totalRaces.Load() > 0 {
		return 1
	}
	return 0
}

// parseTenantQuotas parses the -tenant-quota grammar: semicolon-separated
// tenant entries, each 'name:key=value,...' with keys events (float,
// events/s), burst (events), sessions (count), and arena (bytes, with an
// optional K/M/G suffix). The tenant name 'default' sets the quota applied
// to tenants without an entry.
func parseTenantQuotas(spec string) (def fleet.Quota, quotas map[string]fleet.Quota, err error) {
	quotas = map[string]fleet.Quota{}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, body, ok := strings.Cut(entry, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return def, nil, fmt.Errorf("bad -tenant-quota entry %q (want name:key=value,...)", entry)
		}
		var q fleet.Quota
		for _, kv := range strings.Split(body, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return def, nil, fmt.Errorf("bad -tenant-quota field %q in %q", kv, entry)
			}
			switch k {
			case "events":
				if q.EventsPerSec, err = strconv.ParseFloat(v, 64); err != nil || q.EventsPerSec < 0 {
					return def, nil, fmt.Errorf("bad -tenant-quota events %q", v)
				}
			case "burst":
				if q.Burst, err = strconv.Atoi(v); err != nil || q.Burst < 0 {
					return def, nil, fmt.Errorf("bad -tenant-quota burst %q", v)
				}
			case "sessions":
				if q.MaxSessions, err = strconv.Atoi(v); err != nil || q.MaxSessions < 0 {
					return def, nil, fmt.Errorf("bad -tenant-quota sessions %q", v)
				}
			case "arena":
				if q.MaxArenaBytes, err = parseBytes(v); err != nil {
					return def, nil, fmt.Errorf("bad -tenant-quota arena %q: %v", v, err)
				}
			default:
				return def, nil, fmt.Errorf("unknown -tenant-quota key %q (want events, burst, sessions, or arena)", k)
			}
		}
		if name == "default" {
			def = q
		} else {
			quotas[name] = q
		}
	}
	return def, quotas, nil
}

// parseBytes parses a byte count with an optional K/M/G (or KB/MB/GB)
// binary suffix.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}} {
		if strings.HasSuffix(s, suf.tag) {
			s, mult = strings.TrimSuffix(s, suf.tag), suf.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative byte count, e.g. 64MB")
	}
	return n * mult, nil
}

// parseInject arms the daemon's deterministic fault hooks from a comma
// list of kind:count pairs (chaos testing; see internal/faultinject).
func parseInject(spec string, cfg *daemonConfig) error {
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad -inject entry %q (want kind:count)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -inject count %q", kv[1])
		}
		switch kv[0] {
		case "rep-panic":
			cfg.injectRepPanic = int64(n)
		case "worker-panic":
			cfg.injectWorkerPanic = n
		case "ckpt-crash":
			cfg.injectCkptCrash = n
		case "wal-crash":
			cfg.injectWalCrash = n
		default:
			return fmt.Errorf("unknown -inject kind %q (want rep-panic, worker-panic, ckpt-crash, or wal-crash)", kv[0])
		}
	}
	return nil
}

// deadlineWriter applies the daemon write timeout to the JSONL report
// writer. Regular files do not support write deadlines (SetWriteDeadline
// returns ErrNoDeadline) and are written as-is; pipes and sockets — where
// a stuck reader could otherwise wedge every session's race reporting —
// honor the deadline.
type deadlineWriter struct {
	f *os.File
	d time.Duration
}

func (w *deadlineWriter) Write(p []byte) (int, error) {
	if w.d > 0 {
		w.f.SetWriteDeadline(time.Now().Add(w.d)) // best-effort; see above
	}
	return w.f.Write(p)
}

// loadRep resolves a built-in spec name or parses a spec file and
// translates it (same resolution as cmd/rd2).
func loadRep(name string) (ap.Rep, error) {
	if rep, err := specs.Rep(name); err == nil {
		return rep, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("spec %q is neither built-in (%v) nor readable: %v",
			name, specs.Names(), err)
	}
	spec, err := ecl.ParseSpec(string(src))
	if err != nil {
		return nil, err
	}
	return translate.Translate(spec)
}
