package main

// Fault-tolerance tests for the daemon: injected shard/worker panics must
// degrade (never crash) a session, corrupt streams under -resync must yield
// either a full correct report or an explicitly degraded/failed one, and a
// resumable session severed at every chunk boundary must reproduce the
// exact race set of an unsevered run.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestDaemonSurvivesWorkerPanic arms the session-worker panic injector. The
// session must finish with a degraded (partial but honest) summary, and the
// daemon must keep serving.
func TestDaemonSurvivesWorkerPanic(t *testing.T) {
	tr, _ := racyTrace(t)
	const panicAt = 10
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.injectWorkerPanic = panicAt
	})

	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Degraded {
		t.Fatalf("worker panic not marked degraded: %+v", sum)
	}
	if sum.ShardPanics < 1 {
		t.Fatalf("summary shard_panics = %d, want >= 1", sum.ShardPanics)
	}
	if sum.Events == 0 || sum.Events >= tr.Len() {
		t.Fatalf("degraded session analyzed %d events, want partial (0 < n < %d)",
			sum.Events, tr.Len())
	}

	// The daemon survived: a second session still gets a summary (it is
	// degraded too — the injector is armed per session — but delivered).
	cl, err = wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	if sum, err = cl.Close(10 * time.Second); err != nil || !sum.Degraded {
		t.Fatalf("second session after panic: err=%v sum=%+v", err, sum)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.degraded.Load(); got != 2 {
		t.Fatalf("daemon degraded counter = %d, want 2", got)
	}
}

// TestDaemonSurvivesRepPanic arms the shared rep-panic countdown: some Touch
// call deep in the detection path panics. The supervisor must recover it,
// mark the session degraded, and deliver the summary.
func TestDaemonSurvivesRepPanic(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.injectRepPanic = 25
	})

	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Degraded || sum.ShardPanics < 1 {
		t.Fatalf("rep panic summary = %+v, want degraded with shard_panics >= 1", sum)
	}
	// Partial but honest: no invented races.
	if sum.Races > wantRaces {
		t.Fatalf("degraded session invented races: %d > offline %d", sum.Races, wantRaces)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDaemonResyncCorruptionVariants streams every fault-injector corruption
// variant of a valid session at a -resync daemon. The hard guarantee: the
// daemon always answers with a summary — a full correct report, or one
// explicitly marked degraded/failed — and never crashes, hangs, or silently
// drops data.
func TestDaemonResyncCorruptionVariants(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.resync = true
	})

	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.FrameSize = 128
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	for _, v := range faultinject.CorruptStream(data, 77, len(wire.Magic)+1) {
		conn, err := net.Dial("tcp", d.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(v.Data); err != nil {
			t.Fatalf("%s: write: %v", v.Name, err)
		}
		conn.(*net.TCPConn).CloseWrite()
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		line, err := bufio.NewReader(conn).ReadBytes('\n')
		conn.Close()
		if err != nil {
			t.Fatalf("%s: daemon sent no summary: %v", v.Name, err)
		}
		var sum wire.Summary
		if err := json.Unmarshal(line, &sum); err != nil {
			t.Fatalf("%s: bad summary %q: %v", v.Name, line, err)
		}
		if sum.Error == "" && !sum.Degraded {
			// The daemon claims a full, undegraded report: it must actually
			// be the correct one.
			if sum.Events != tr.Len() || sum.Races != wantRaces {
				t.Fatalf("%s: claimed-clean summary %+v, want %d events / %d races",
					v.Name, sum, tr.Len(), wantRaces)
			}
		}
		t.Logf("%s: events=%d races=%d degraded=%v skipped_frames=%d err=%q",
			v.Name, sum.Events, sum.Races, sum.Degraded, sum.SkippedFrames, sum.Error)
	}

	// After the whole corruption family, a pristine session is still exact.
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Error != "" || sum.Degraded || sum.Races != wantRaces || sum.Events != tr.Len() {
		t.Fatalf("post-corruption session summary %+v, want clean %d races / %d events",
			sum, wantRaces, tr.Len())
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// severProxy forwards TCP between a client and the daemon, hard-closing the
// FIRST connection after exactly cut client-to-daemon bytes. Every later
// connection is forwarded transparently, so a resumable client can sever at
// a precise byte offset and then resume.
type severProxy struct {
	ln     net.Listener
	target string
	cut    int64

	mu      sync.Mutex
	severed bool
}

func newSeverProxy(t *testing.T, target string, cut int64) *severProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &severProxy{ln: ln, target: target, cut: cut}
	t.Cleanup(func() { ln.Close() })
	go p.serve()
	return p
}

func (p *severProxy) addr() string { return p.ln.Addr().String() }

func (p *severProxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(c)
	}
}

func (p *severProxy) handle(client net.Conn) {
	server, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	first := !p.severed
	p.severed = true
	p.mu.Unlock()

	go func() { // daemon -> client (acks, summary)
		io.Copy(client, server)
		client.Close()
	}()
	if first {
		io.CopyN(server, client, p.cut)
		client.Close()
		server.Close()
		return
	}
	io.Copy(server, client)
	server.Close()
}

// sessionLayout encodes tr as a resumable session stream and returns the
// on-wire length of the header+hello prefix and of each chunk, so tests can
// compute the exact byte offset of every chunk boundary.
func sessionLayout(t *testing.T, tr *trace.Trace, frameSize int, sid string) (prefix int, chunks []int) {
	t.Helper()
	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.FrameSize = frameSize
	if err := enc.SetSession(sid); err != nil {
		t.Fatal(err)
	}
	enc.OnFrame = func(seq uint64, frame []byte) error {
		chunks = append(chunks, len(frame))
		return nil
	}
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range chunks {
		total += n
	}
	return buf.Len() - total, chunks
}

// raceLines extracts the sorted race records (notes excluded) from a JSONL
// report buffer. Every record must carry its owning session id and a dense
// per-session seq (1..N in file order, surviving resumes); both are checked
// here and then stripped so runs under different session ids — a plain
// baseline vs a severed resumable stream — compare equal.
func raceLines(t *testing.T, report *bytes.Buffer) []string {
	t.Helper()
	var out []string
	lastSeq := map[string]uint64{}
	sc := bufio.NewScanner(bytes.NewReader(report.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad report line %q: %v", line, err)
		}
		if _, isNote := m["note"]; isNote {
			continue
		}
		sess, _ := m["session"].(string)
		if sess == "" {
			t.Fatalf("race record missing session id: %q", line)
		}
		seq, _ := m["seq"].(float64)
		if uint64(seq) != lastSeq[sess]+1 {
			t.Fatalf("session %q: race record seq %v, want %d (dense and monotonic): %q",
				sess, m["seq"], lastSeq[sess]+1, line)
		}
		lastSeq[sess] = uint64(seq)
		delete(m, "session")
		delete(m, "seq")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	sort.Strings(out)
	return out
}

func loadCorpusTrace(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := wire.ParseAny(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return tr
}

// TestDaemonResumeAtEveryChunkBoundary is the resilience acceptance check:
// for each corpus trace, a resumable stream severed (and resumed) at every
// chunk boundary must produce the identical sorted race set — and event
// count — as an unsevered run.
func TestDaemonResumeAtEveryChunkBoundary(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "traces", "*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus traces found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			diffResumeCorpus(t, path)
		})
	}
}

func diffResumeCorpus(t *testing.T, path string) {
	tr := loadCorpusTrace(t, path)
	if tr.Len() == 0 {
		t.Skip("empty trace")
	}

	// Size frames so the stream splits into a handful of chunks; the layout
	// below reports the real boundaries whatever the split.
	var probe bytes.Buffer
	if err := wire.EncodeTrace(&probe, tr); err != nil {
		t.Fatal(err)
	}
	frameSize := probe.Len() / 5
	if frameSize < 64 {
		frameSize = 64
	}
	const sid = "diff"
	prefix, chunks := sessionLayout(t, tr, frameSize, sid)

	// Baseline: unsevered run.
	var baseReport bytes.Buffer
	d, done := testDaemon(t, &baseReport)
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	baseSum, err := cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if baseSum.Error != "" || !baseSum.Clean || baseSum.Events != tr.Len() {
		t.Fatalf("baseline summary %+v, want clean over %d events", baseSum, tr.Len())
	}
	baseRaces := raceLines(t, &baseReport)

	cut := int64(prefix)
	for k, chunkLen := range chunks {
		cut += int64(chunkLen)
		var report bytes.Buffer
		d, done := testDaemon(t, &report)
		proxy := newSeverProxy(t, d.Addr(), cut)

		rc, err := wire.DialSession(proxy.addr(), sid, 2*time.Second)
		if err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		rc.SetFrameSize(frameSize)
		rc.Backoff = 5 * time.Millisecond
		if err := rc.SendSource(tr.Source()); err != nil {
			t.Fatalf("boundary %d: send: %v", k, err)
		}
		sum, err := rc.Close(15 * time.Second)
		if err != nil {
			t.Fatalf("boundary %d: close: %v", k, err)
		}
		d.Shutdown()
		if err := <-done; err != nil {
			t.Fatalf("boundary %d: Serve: %v", k, err)
		}

		if sum.Error != "" || !sum.Clean || sum.Degraded {
			t.Fatalf("boundary %d: summary %+v, want clean undegraded", k, sum)
		}
		if sum.Events != tr.Len() {
			t.Fatalf("boundary %d: %d events analyzed, want %d (no loss, no duplication)",
				k, sum.Events, tr.Len())
		}
		if sum.Races != baseSum.Races {
			t.Fatalf("boundary %d: %d races, baseline %d", k, sum.Races, baseSum.Races)
		}
		if sum.Resumes < 1 {
			t.Fatalf("boundary %d: session was never resumed (cut=%d bytes)", k, cut)
		}
		got := raceLines(t, &report)
		if len(got) != len(baseRaces) {
			t.Fatalf("boundary %d: %d race records, baseline %d", k, len(got), len(baseRaces))
		}
		for i := range got {
			if got[i] != baseRaces[i] {
				t.Fatalf("boundary %d: race record %d differs:\n  severed:  %s\n  baseline: %s",
					k, i, got[i], baseRaces[i])
			}
		}
	}
}
