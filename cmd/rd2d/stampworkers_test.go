package main

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/wire"
)

// TestDaemonChunkedWorkerMatchesSerial streams the same workload into a
// legacy daemon and a -stampworkers=2 daemon (chunked two-pass stamping in
// the session worker) and requires identical session summaries — the
// daemon leg of the ISSUE 6 differential.
func TestDaemonChunkedWorkerMatchesSerial(t *testing.T) {
	gcfg := trace.GenConfig{
		Threads: 5, Objects: 4, Keys: 5, Vals: 3, Locks: 2,
		OpsMin: 60, OpsMax: 90, PSize: 10, PGet: 40, PLocked: 25, PRemove: 25,
	}
	tr := trace.Generate(rand.New(rand.NewSource(11)), gcfg)

	run := func(stampWorkers int) wire.Summary {
		t.Helper()
		var report bytes.Buffer
		d, done := testDaemonCfg(t, &report, func(cfg *daemonConfig) {
			cfg.stampWorkers = stampWorkers
			cfg.queueLen = 32 // force several chunks per session
		})
		cl, err := wire.Dial(d.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.SendSource(tr.Source()); err != nil {
			t.Fatal(err)
		}
		sum, err := cl.Close(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		d.Shutdown()
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
		return sum
	}

	serial := run(1)
	chunked := run(2)
	if serial.Error != "" || chunked.Error != "" {
		t.Fatalf("session errors: serial %q, chunked %q", serial.Error, chunked.Error)
	}
	if !serial.Clean || !chunked.Clean {
		t.Fatalf("sessions not clean: serial %+v, chunked %+v", serial, chunked)
	}
	if serial.Events != chunked.Events || serial.Races != chunked.Races {
		t.Fatalf("summaries differ:\n  serial:  %+v\n  chunked: %+v", serial, chunked)
	}
}

// TestDaemonChunkedWorkerErrorParity: a malformed stream produces the same
// positioned session error through the chunked worker as the serial one.
func TestDaemonChunkedWorkerErrorParity(t *testing.T) {
	bad := &trace.Trace{}
	bad.Append(trace.Fork(0, 1))
	bad.Append(trace.Act(1, trace.Action{Obj: 0, Method: "size", Rets: []trace.Value{trace.IntValue(0)}}))
	bad.Append(trace.Recv(1, 3)) // no pending send
	bad.Append(trace.Act(1, trace.Action{Obj: 0, Method: "size", Rets: []trace.Value{trace.IntValue(0)}}))

	run := func(stampWorkers int) wire.Summary {
		t.Helper()
		d, done := testDaemonCfg(t, nil, func(cfg *daemonConfig) {
			cfg.stampWorkers = stampWorkers
		})
		cl, err := wire.Dial(d.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.SendSource(bad.Source()); err != nil {
			t.Fatal(err)
		}
		sum, err := cl.Close(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		d.Shutdown()
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
		return sum
	}

	serial := run(1)
	chunked := run(2)
	if serial.Error == "" || chunked.Error == "" {
		t.Fatalf("expected session errors, got serial %q, chunked %q", serial.Error, chunked.Error)
	}
	if serial.Error != chunked.Error {
		t.Fatalf("error mismatch:\n  serial:  %s\n  chunked: %s", serial.Error, chunked.Error)
	}
	if serial.Events != chunked.Events {
		t.Fatalf("events: serial %d, chunked %d", serial.Events, chunked.Events)
	}
}
