package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Ingest metrics (DESIGN.md §8) that are daemon-wide by nature: connection
// counters and bytes read. Everything attributable to one session — frames,
// events, races, queue depth and its high-water mark, backpressure stalls —
// lives in the per-session scope (sessObs) and rolls up into the global
// series on write.
var (
	obsConns     = obs.GetCounter("rd2d.conns")
	obsActive    = obs.GetGauge("rd2d.active_conns")
	obsBytes     = obs.GetCounter("rd2d.bytes")
	obsSessions  = obs.GetCounter("rd2d.sessions_done")
	obsDrainCuts = obs.GetCounter("rd2d.sessions_drained")
	obsBusy      = obs.GetCounter("rd2d.busy_rejects")
)

// daemonConfig is the resolved configuration of a daemon instance.
type daemonConfig struct {
	defaultRep   ap.Rep
	defaultSpec  string
	binds        map[trace.ObjID]ap.Rep
	bindSpecs    map[trace.ObjID]string
	engine       core.Engine
	shards       int
	stampWorkers int // >= 2 runs the chunked two-pass stamping worker
	maxRaces     int
	queueLen     int           // per-connection ingest queue, in events
	idleTimeout  time.Duration // per-read deadline; 0 disables
	writeTimeout time.Duration // summary/ack write deadline; 0 disables
	resumeTTL    time.Duration // parked-session lifetime; 0 = DefaultResumeTTL
	resync       bool          // corruption resync: skip corrupt frames (degraded)
	compactOps   int           // compact at most once per this many events; 0 disables
	reporter     *core.ReportWriter
	logger       *log.Logger
	obsRoot      *obs.Registry // registry the session scopes hang under; nil = obs.Default

	// Fault injection (ci.sh -chaos / -durable; inert when zero).
	injectRepPanic    int64 // panic on the N-th rep Touch per session
	injectWorkerPanic int   // panic on the N-th event in the session worker
	injectCkptCrash   int   // SIGKILL with a half-written snapshot on the N-th checkpoint
	injectWalCrash    int   // SIGKILL with a half-written frame on the N-th WAL append

	// Durable sessions (DESIGN.md §15; off when stateDir is empty).
	stateDir   string
	ckptEvery  int // snapshot cadence in events; 0 = DefaultCkptEvery
	fsyncMode  int // fsyncOff | fsyncCkpt | fsyncAlways
	reportSeqs map[string]uint64 // per-session durable JSONL seq from a prior life

	// Fleet scheduling (DESIGN.md §14). maxSessions and the quota fields
	// are enforced even with fleet off — the scheduler always exists and
	// gates admission; only the shared worker pool is opt-in.
	fleet        bool                   // run sessions on the shared worker pool
	fleetWorkers int                    // pool size; 0 = GOMAXPROCS
	maxSessions  int                    // resident session cap; 0 = unbounded
	globalRate   float64                // daemon-wide events/s budget; 0 = unlimited
	fleetQuantum int                    // DRR grant per tenant round; 0 = fleet.DefaultQuantum
	defaultQuota fleet.Quota            // quota for tenants not in tenantQuotas
	tenantQuotas map[string]fleet.Quota // per-tenant overrides
}

// DefaultWriteTimeout bounds summary and ack writes to dead clients.
const DefaultWriteTimeout = 5 * time.Second

// daemon accepts wire streams over TCP and runs detection sessions:
// incremental happens-before stamping feeding the sharded pipeline, races
// streamed to the shared JSONL reporter as found. Plain streams are one
// session per connection; hello-framed streams open resumable sessions
// that survive connection loss (see session.go).
type daemon struct {
	cfg   daemonConfig
	ln    net.Listener
	sched *fleet.Scheduler

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	sessions map[string]*session // resumable sessions by client session id
	draining bool

	// tracked lists every live or lingering session by scope name for
	// /sessions and the stats table. Its own lock, not d.mu: newSession
	// runs under d.mu on the resume path, and monitoring reads must never
	// contend with the accept/route path.
	trackMu sync.Mutex
	tracked map[string]*session

	wg          sync.WaitGroup
	sessionSeq  atomic.Int64
	totalEvents atomic.Int64
	totalRaces  atomic.Int64
	failed      atomic.Int64
	degraded    atomic.Int64

	// phase drives /healthz readiness: starting → rehydrating → serving →
	// draining. In-process embedders get serving straight from newDaemon;
	// the rd2d binary interposes rehydrating while the state dir loads.
	phase atomic.Int32

	// Daemon-wide injection countdowns for the durable chaos harness.
	walAppendN atomic.Int64
	snapshotN  atomic.Int64
}

// Daemon phases, reported by /healthz.
const (
	phaseStarting = int32(iota)
	phaseRehydrating
	phaseServing
	phaseDraining
)

func phaseName(p int32) string {
	switch p {
	case phaseRehydrating:
		return "rehydrating"
	case phaseServing:
		return "serving"
	case phaseDraining:
		return "draining"
	}
	return "starting"
}

// newDaemon starts listening on addr.
func newDaemon(addr string, cfg daemonConfig) (*daemon, error) {
	if cfg.queueLen <= 0 {
		cfg.queueLen = 1024
	}
	if cfg.compactOps < 0 {
		cfg.compactOps = 4096
	}
	if cfg.logger == nil {
		cfg.logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		cfg:      cfg,
		ln:       ln,
		conns:    map[net.Conn]struct{}{},
		sessions: map[string]*session{},
		tracked:  map[string]*session{},
	}
	workers := 0
	if cfg.fleet {
		workers = cfg.fleetWorkers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	d.sched = fleet.New(fleet.Config{
		Workers:            workers,
		MaxSessions:        cfg.maxSessions,
		GlobalEventsPerSec: cfg.globalRate,
		Quantum:            cfg.fleetQuantum,
		Default:            cfg.defaultQuota,
		Tenants:            cfg.tenantQuotas,
		Obs:                d.obsRoot(),
		Logf:               cfg.logger.Printf,
	})
	d.phase.Store(phaseServing)
	return d, nil
}

// obsRoot returns the registry session scopes hang under.
func (d *daemon) obsRoot() *obs.Registry {
	if d.cfg.obsRoot != nil {
		return d.cfg.obsRoot
	}
	return obs.Default
}

// track registers a session for /sessions listing (newest wins on a reused
// scope name, mirroring the resumable-session table).
func (d *daemon) track(s *session) {
	d.trackMu.Lock()
	d.tracked[s.name] = s
	d.trackMu.Unlock()
}

// untrack forgets a lingered session and detaches its metric scope, unless
// the name has been taken over by a newer session.
func (d *daemon) untrack(s *session) {
	d.trackMu.Lock()
	if d.tracked[s.name] == s {
		delete(d.tracked, s.name)
		d.obsRoot().DropScope("session", s.name)
	}
	d.trackMu.Unlock()
}

// Addr returns the bound listen address.
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Serve runs the accept loop until Shutdown closes the listener. It
// returns after every in-flight session has drained.
func (d *daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.finalizeParked()
			d.wg.Wait()
			// Every session has finalized; stop the fleet workers (Stop
			// drains any quanta still queued, so it must come after the
			// finalize sweep, never before).
			d.sched.Stop()
			if d.isDraining() {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.draining {
			d.mu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(conn)
		}()
	}
}

// Shutdown begins a graceful drain: stop accepting, interrupt blocked
// reads so sessions stop ingesting, finalize parked sessions, and wait for
// every session to flush its pending shards and report. Safe to call more
// than once.
func (d *daemon) Shutdown() {
	d.phase.Store(phaseDraining)
	d.mu.Lock()
	already := d.draining
	d.draining = true
	for conn := range d.conns {
		// Wake any read blocked on the socket; the session treats the
		// timeout as end-of-input and drains what it has.
		conn.SetReadDeadline(time.Now())
	}
	d.mu.Unlock()
	if !already {
		d.ln.Close()
	}
	d.finalizeParked()
	d.wg.Wait()
}

// finalizeParked finalizes every parked session during a drain, so their
// partial reports land before the daemon exits. Attached sessions are
// finalized by their own read loops (the drain check in park prevents any
// new parking once draining is set, and park's d.mu transition makes this
// sweep exhaustive).
func (d *daemon) finalizeParked() {
	d.mu.Lock()
	var parked []*session
	for _, s := range d.sessions {
		s.mu.Lock()
		if s.state == stateParked {
			parked = append(parked, s)
		}
		s.mu.Unlock()
	}
	d.mu.Unlock()
	for _, s := range parked {
		obsDrainCuts.Inc()
		sum := s.finalize()
		s.logf("drain: finalized parked session: %d events, %d races, clean=%v",
			sum.Events, sum.Races, sum.Clean)
	}
}

func (d *daemon) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// dropSession forgets a completed resumable session (TTL after finalize),
// unless the id has already been taken over by a newer session.
func (d *daemon) dropSession(sid string, s *session) {
	d.mu.Lock()
	if d.sessions[sid] == s {
		delete(d.sessions, sid)
	}
	d.mu.Unlock()
}

// repFor resolves the access point representation and spec name for an
// object (static per-daemon: -bind overrides, else the default spec).
func (d *daemon) repFor(obj trace.ObjID) (ap.Rep, string) {
	if rep, ok := d.cfg.binds[obj]; ok {
		return rep, d.cfg.bindSpecs[obj]
	}
	return d.cfg.defaultRep, d.cfg.defaultSpec
}

// countingConn counts bytes read and applies the idle read deadline.
type countingConn struct {
	conn  net.Conn
	idle  time.Duration
	bytes int64
	d     *daemon
}

func (c *countingConn) Read(p []byte) (int, error) {
	// Serialized against Shutdown's deadline poke so a drain can never be
	// overwritten by a refreshed idle deadline.
	c.d.mu.Lock()
	if c.d.draining {
		c.conn.SetReadDeadline(time.Now())
	} else if c.idle > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.idle))
	}
	c.d.mu.Unlock()
	n, err := c.conn.Read(p)
	c.bytes += int64(n)
	return n, err
}

// writeJSON writes one JSON line to conn under the write timeout. Errors
// are ignored: the client may already be gone (abort, drain), and both
// summaries and acks are re-deliverable through the resume path.
func (d *daemon) writeJSON(conn net.Conn, v any) {
	wt := d.cfg.writeTimeout
	if wt <= 0 {
		wt = DefaultWriteTimeout
	}
	conn.SetWriteDeadline(time.Now().Add(wt))
	if b, err := json.Marshal(v); err == nil {
		conn.Write(append(b, '\n'))
	}
}

// handle runs one connection: decode the stream header, route to a plain
// (connection-bound) or resumable session, feed the session's queue, and
// deliver the summary or park the session when the connection dies early.
func (d *daemon) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	obsConns.Inc()
	obsActive.Add(1)
	defer obsActive.Add(-1)

	cr := &countingConn{conn: conn, idle: d.cfg.idleTimeout, d: d}
	defer func() { obsBytes.Add(uint64(cr.bytes)) }()

	dec, err := wire.NewDecoder(cr)
	if err != nil {
		d.cfg.logger.Printf("conn %s: handshake failed: %v", conn.RemoteAddr(), err)
		d.failed.Add(1)
		obsSessions.Inc()
		d.writeJSON(conn, wire.Summary{Error: err.Error()})
		return
	}
	dec.SetResync(d.cfg.resync)
	sid, err := dec.ReadHello()
	if err != nil {
		d.cfg.logger.Printf("conn %s: hello failed: %v", conn.RemoteAddr(), err)
		d.failed.Add(1)
		obsSessions.Inc()
		d.writeJSON(conn, wire.Summary{Error: err.Error()})
		return
	}

	tenant := dec.Tenant()
	if tenant == "" {
		tenant = fleet.DefaultTenant
	}

	if sid == "" {
		// Plain stream: the session lives and dies with this connection.
		release, aerr := d.sched.Admit(tenant)
		if aerr != nil {
			d.rejectBusy(conn, "", tenant, aerr)
			return
		}
		s := d.newSession("", tenant, nil)
		s.admit = release
		s.logf("connected (%s, tenant %q)", conn.RemoteAddr(), tenant)
		s.setConn(conn)
		dec.SetObs(s.scope)
		th := d.sched.Throttle(tenant)
		s.mu.Lock()
		s.dec = dec
		s.th = th
		s.mu.Unlock()
		err := d.readLoop(s, dec, th)
		d.classifyEnd(s, err)
		sum := s.finalize()
		d.writeJSON(conn, sum)
		s.logf("done: %d events, %d races, clean=%v degraded=%v err=%q",
			sum.Events, sum.Races, sum.Clean, sum.Degraded, sum.Error)
		return
	}

	// Resumable stream: route to a (possibly existing) session.
	s, resumed, err := d.routeSession(sid, tenant, dec)
	if err != nil {
		if isBusy(err) {
			d.rejectBusy(conn, sid, tenant, err)
			return
		}
		d.cfg.logger.Printf("conn %s: %v", conn.RemoteAddr(), err)
		d.writeJSON(conn, wire.Summary{SessionID: sid, Error: err.Error()})
		return
	}
	if s.isCompleted() {
		// Late reconnect to a finished session: re-deliver its summary.
		sum := s.waitSummary()
		s.logf("summary re-delivered to %s", conn.RemoteAddr())
		d.writeJSON(conn, sum)
		return
	}
	if resumed {
		s.logf("resumed by %s (replay expected from chunk %d)", conn.RemoteAddr(), nextChunk(dec))
	} else {
		s.logf("connected (%s)", conn.RemoteAddr())
	}
	s.setConn(conn)
	// Ack accepted chunks on the return path so the client can trim its
	// resend buffer. Written from this (the only) writer goroutine.
	dec.OnChunk = func(acked uint64) {
		d.writeJSON(conn, map[string]uint64{"ack": acked})
	}

	th := d.sched.Throttle(tenant)
	s.mu.Lock()
	s.th = th
	s.mu.Unlock()
	err = d.readLoop(s, dec, th)
	if clean, _ := endOfStream(err, dec); clean {
		s.clean.Store(true)
		sum := s.finalize()
		d.writeJSON(conn, sum)
		s.logf("done: %d events, %d races, clean=%v degraded=%v resumes=%d err=%q",
			sum.Events, sum.Races, sum.Clean, sum.Degraded, sum.Resumes, sum.Error)
		return
	}
	if !d.isDraining() && connLost(err) {
		// The connection died mid-stream: park and wait for a resume.
		s.setConn(nil)
		if s.park() {
			return
		}
	}
	d.classifyEnd(s, err)
	sum := s.finalize()
	d.writeJSON(conn, sum)
	s.logf("done: %d events, %d races, clean=%v degraded=%v resumes=%d err=%q",
		sum.Events, sum.Races, sum.Clean, sum.Degraded, sum.Resumes, sum.Error)
}

// nextChunk reads the decoder's chunk cursor for logging.
func nextChunk(dec *wire.Decoder) uint64 {
	if n, ok := dec.AckedChunk(); ok {
		return n + 1
	}
	return 0
}

// routeSession finds or creates the resumable session for sid. A parked
// session is re-attached: the new connection's decoder adopts the stream
// state (interning table, chunk cursor) of the dead connection's decoder,
// so replayed chunks deduplicate and fresh chunks decode correctly. If the
// id is still attached to a live connection, that connection is poked and
// given a moment to park (covers half-dead TCP peers the client already
// gave up on); a second live claim loses.
func (d *daemon) routeSession(sid, tenant string, dec *wire.Decoder) (s *session, resumed bool, err error) {
	d.mu.Lock()
	s, ok := d.sessions[sid]
	if !ok {
		if d.draining {
			d.mu.Unlock()
			return nil, false, fmt.Errorf("draining: session %q rejected", sid)
		}
		// Admission happens under d.mu so two racing hellos for a new sid
		// can never both reserve a slot for it. Resumes below bypass it:
		// a parked session is already resident, and shedding a reconnect
		// would strand detection state the daemon still holds.
		release, aerr := d.sched.Admit(tenant)
		if aerr != nil {
			d.mu.Unlock()
			return nil, false, aerr
		}
		s = d.newSession(sid, tenant, nil)
		s.admit = release
		d.sessions[sid] = s
		d.mu.Unlock()
		dec.SetObs(s.scope)
		s.mu.Lock()
		s.dec = dec
		if s.dur != nil {
			dec.OnFrameAccepted = s.dur.hook(dec)
		}
		s.mu.Unlock()
		return s, false, nil
	}
	d.mu.Unlock()
	if s.tenant != tenant {
		// The hello's tenant rides every replayed hello, so a mismatch is
		// a client bug or a sid collision across tenants — never resume
		// one tenant's session with another's credentials.
		return nil, false, fmt.Errorf("session %q belongs to tenant %q, hello says %q",
			sid, s.tenant, tenant)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		switch s.state {
		case stateParked:
			if s.ttl != nil && !s.ttl.Stop() {
				// The TTL already fired; expiry is finalizing concurrently.
				// Treat as completed: the caller re-delivers the summary.
				s.mu.Unlock()
				s.waitSummary()
				return s, true, nil
			}
			s.ttl = nil
			dec.AdoptState(s.dec)
			dec.SetObs(s.scope)
			s.dec = dec
			if s.dur != nil {
				dec.OnFrameAccepted = s.dur.hook(dec)
			}
			s.state = stateAttached
			s.resumes++
			s.mu.Unlock()
			obsResumes.Inc()
			return s, true, nil
		case stateCompleted:
			s.mu.Unlock()
			return s, true, nil
		default: // stateAttached
			old := s.conn
			s.mu.Unlock()
			if time.Now().After(deadline) {
				return nil, false, fmt.Errorf("session %q is attached to another connection", sid)
			}
			if old != nil {
				old.SetReadDeadline(time.Now()) // force the stale reader out
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// isBusy reports whether err is a fleet admission reject.
func isBusy(err error) bool {
	var busy *fleet.BusyError
	return errors.As(err, &busy)
}

// busyDrainTimeout bounds how long a rejected connection is drained so
// the producer can read the busy line before the socket closes.
const busyDrainTimeout = 5 * time.Second

// rejectBusy turns an admission reject into the wire-level busy
// summary: write the line, half-close the write side so it is flushed
// ahead of any reset, then drain whatever the producer already has in
// flight (closing with unread inbound data would RST the connection and
// race the reject line off the wire). Clients surface the line as
// wire.ErrBusy and retry with backoff (rd2 -send exits 6 when retries
// run out).
func (d *daemon) rejectBusy(conn net.Conn, sid, tenant string, cause error) {
	obsBusy.Inc()
	d.failed.Add(1)
	obsSessions.Inc()
	d.cfg.logger.Printf("conn %s: busy reject (tenant %q): %v", conn.RemoteAddr(), tenant, cause)
	d.writeJSON(conn, wire.Summary{SessionID: sid, Busy: true, Error: cause.Error()})
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	conn.SetReadDeadline(time.Now().Add(busyDrainTimeout))
	io.Copy(io.Discard, conn)
}

// readLoop decodes events from one connection into the session queue until
// the stream ends (whatever way), returning the terminal decode error. Each
// decode is recorded in the session's stage.decode span (latency includes
// waiting for bytes — the span's p99 is time-to-next-event as the worker
// experiences it), and ingest counters land in the session scope. Each
// event is charged to the tenant's throttle before it is enqueued: an
// over-quota tenant stalls right here, in its own connection's read
// loop, and TCP flow control pushes back on exactly that producer. In
// fleet mode the enqueue also wakes the session's run-queue entry.
func (d *daemon) readLoop(s *session, dec *wire.Decoder, th *fleet.Throttle) error {
	lastFrames := dec.Frames()
	for {
		start := s.ob.decode.Start()
		e, err := dec.Next()
		if f := dec.Frames(); f > lastFrames {
			s.ob.frames.Add(uint64(f - lastFrames))
			lastFrames = f
		}
		if err != nil {
			return err
		}
		s.ob.decode.End(start, 1)
		th.Wait(1)
		if obs.Enabled() {
			select {
			case s.queue <- e:
			default:
				s.ob.stalls.Inc()
				s.queue <- e
			}
			s.ob.queue.Set(int64(len(s.queue)))
		} else {
			s.queue <- e
		}
		if s.entry != nil {
			s.entry.Wake()
		}
	}
}

// endOfStream reports whether err is a clean end (end-of-stream frame).
func endOfStream(err error, dec *wire.Decoder) (clean, eof bool) {
	if errors.Is(err, io.EOF) {
		return dec.Clean(), true
	}
	return false, false
}

// connLost reports whether err looks like a lost connection (resumable)
// rather than stream corruption (not worth resuming: the client would
// replay the same bytes).
func connLost(err error) bool {
	if errors.Is(err, io.EOF) {
		return true // unclean EOF at a frame boundary: peer went away
	}
	if errors.Is(err, wire.ErrTruncated) {
		return true // stream cut mid-frame (includes read timeouts mid-frame)
	}
	return isTimeout(err)
}

// classifyEnd records how the stream ended on the session: a clean end
// frame sets Clean, a drain cut is logged but not an error, anything else
// becomes the summary error.
func (d *daemon) classifyEnd(s *session, err error) {
	switch {
	case err == nil:
		return
	case errors.Is(err, io.EOF):
		s.clean.Store(s.cleanOf())
	case isTimeout(err) && d.isDraining():
		obsDrainCuts.Inc()
		s.logf("drain: stopped reading mid-stream")
	default:
		s.setReadErr(err.Error())
		s.logf("read: %v", err)
	}
}

// cleanOf reads the current decoder's clean flag under mu.
func (s *session) cleanOf() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec != nil && s.dec.Clean()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
