package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Ingest metrics (DESIGN.md §8): connection and stream counters, the
// per-connection queue depth high-water mark, and backpressure stalls (a
// push that found the ingest queue full and had to block the socket).
var (
	obsConns     = obs.GetCounter("rd2d.conns")
	obsActive    = obs.GetGauge("rd2d.active_conns")
	obsFrames    = obs.GetCounter("rd2d.frames")
	obsBytes     = obs.GetCounter("rd2d.bytes")
	obsEvents    = obs.GetCounter("rd2d.events")
	obsRaces     = obs.GetCounter("rd2d.races")
	obsQueue     = obs.GetGauge("rd2d.queue_events")
	obsStalls    = obs.GetCounter("rd2d.backpressure_stalls")
	obsSessions  = obs.GetCounter("rd2d.sessions_done")
	obsDrainCuts = obs.GetCounter("rd2d.sessions_drained")
)

// daemonConfig is the resolved configuration of a daemon instance.
type daemonConfig struct {
	defaultRep  ap.Rep
	defaultSpec string
	binds       map[trace.ObjID]ap.Rep
	bindSpecs   map[trace.ObjID]string
	engine      core.Engine
	shards      int
	maxRaces    int
	queueLen    int           // per-connection ingest queue, in events
	idleTimeout time.Duration // per-read deadline; 0 disables
	compactOps  int           // compact at most once per this many events; 0 disables
	reporter    *core.ReportWriter
	logger      *log.Logger
}

// daemon accepts wire streams over TCP and runs one detection session per
// connection: incremental happens-before stamping feeding the sharded
// pipeline, races streamed to the shared JSONL reporter as found.
type daemon struct {
	cfg daemonConfig
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool

	wg          sync.WaitGroup
	totalEvents atomic.Int64
	totalRaces  atomic.Int64
	sessions    atomic.Int64
	failed      atomic.Int64
}

// newDaemon starts listening on addr.
func newDaemon(addr string, cfg daemonConfig) (*daemon, error) {
	if cfg.queueLen <= 0 {
		cfg.queueLen = 1024
	}
	if cfg.compactOps < 0 {
		cfg.compactOps = 4096
	}
	if cfg.logger == nil {
		cfg.logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &daemon{cfg: cfg, ln: ln, conns: map[net.Conn]struct{}{}}, nil
}

// Addr returns the bound listen address.
func (d *daemon) Addr() string { return d.ln.Addr().String() }

// Serve runs the accept loop until Shutdown closes the listener. It
// returns after every in-flight session has drained.
func (d *daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			d.wg.Wait()
			if d.isDraining() {
				return nil
			}
			return err
		}
		d.mu.Lock()
		if d.draining {
			d.mu.Unlock()
			conn.Close()
			continue
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.handle(conn)
		}()
	}
}

// Shutdown begins a graceful drain: stop accepting, interrupt blocked
// reads so sessions stop ingesting, and wait for every session to flush
// its pending shards and report. Safe to call more than once.
func (d *daemon) Shutdown() {
	d.mu.Lock()
	already := d.draining
	d.draining = true
	for conn := range d.conns {
		// Wake any read blocked on the socket; the session treats the
		// timeout as end-of-input and drains what it has.
		conn.SetReadDeadline(time.Now())
	}
	d.mu.Unlock()
	if !already {
		d.ln.Close()
	}
	d.wg.Wait()
}

func (d *daemon) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// repFor resolves the access point representation and spec name for an
// object (static per-daemon: -bind overrides, else the default spec).
func (d *daemon) repFor(obj trace.ObjID) (ap.Rep, string) {
	if rep, ok := d.cfg.binds[obj]; ok {
		return rep, d.cfg.bindSpecs[obj]
	}
	return d.cfg.defaultRep, d.cfg.defaultSpec
}

// countingConn counts bytes read and applies the idle read deadline.
type countingConn struct {
	conn  net.Conn
	idle  time.Duration
	bytes int64
	d     *daemon
}

func (c *countingConn) Read(p []byte) (int, error) {
	// Serialized against Shutdown's deadline poke so a drain can never be
	// overwritten by a refreshed idle deadline.
	c.d.mu.Lock()
	if c.d.draining {
		c.conn.SetReadDeadline(time.Now())
	} else if c.idle > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.idle))
	}
	c.d.mu.Unlock()
	n, err := c.conn.Read(p)
	c.bytes += int64(n)
	return n, err
}

// handle runs one ingestion session over conn.
func (d *daemon) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	obsConns.Inc()
	obsActive.Add(1)
	defer obsActive.Add(-1)
	id := d.sessions.Add(1)
	logf := func(format string, args ...any) {
		d.cfg.logger.Printf("session %d (%s): %s", id, conn.RemoteAddr(), fmt.Sprintf(format, args...))
	}
	logf("connected")

	cr := &countingConn{conn: conn, idle: d.cfg.idleTimeout, d: d}
	sum := d.ingest(cr, logf)
	obsBytes.Add(uint64(cr.bytes))
	obsSessions.Inc()
	d.totalEvents.Add(int64(sum.Events))
	d.totalRaces.Add(int64(sum.Races))
	if sum.Error != "" {
		d.failed.Add(1)
	}

	// Acknowledge the session with a one-line JSON summary; the client may
	// already be gone (abort, drain), which is fine.
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if b, err := json.Marshal(sum); err == nil {
		conn.Write(append(b, '\n'))
	}
	logf("done: %d events, %d races, clean=%v err=%q", sum.Events, sum.Races, sum.Clean, sum.Error)
}

// ingest decodes, stamps, and detects over one connection's stream,
// returning the session summary. The socket reader and the analysis
// worker are decoupled by a bounded event queue: when the worker (and the
// shard queues behind it) fall behind, the reader blocks, TCP flow control
// pushes back on the client, and memory stays bounded.
func (d *daemon) ingest(r io.Reader, logf func(string, ...any)) wire.Summary {
	dec, err := wire.NewDecoder(r)
	if err != nil {
		logf("handshake failed: %v", err)
		return wire.Summary{Error: err.Error()}
	}

	queue := make(chan trace.Event, d.cfg.queueLen)
	var clean atomic.Bool
	var readErr atomic.Value // error string, "" if none

	go func() {
		defer close(queue)
		lastFrames := 0
		for {
			e, err := dec.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					clean.Store(dec.Clean())
				} else if isTimeout(err) && d.isDraining() {
					obsDrainCuts.Inc()
					logf("drain: stopped reading mid-stream after %d events", dec.Events())
				} else {
					readErr.Store(err.Error())
					logf("read: %v", err)
				}
				if f := dec.Frames(); f > lastFrames {
					obsFrames.Add(uint64(f - lastFrames))
				}
				return
			}
			if f := dec.Frames(); f > lastFrames {
				obsFrames.Add(uint64(f - lastFrames))
				lastFrames = f
			}
			if obs.Enabled() {
				select {
				case queue <- e:
				default:
					obsStalls.Inc()
					queue <- e
				}
				obsQueue.Set(int64(len(queue)))
			} else {
				queue <- e
			}
		}
	}()

	// The analysis worker: incremental stamping straight into the sharded
	// pipeline, with lazy registration (an object's registration travels
	// its shard's ordered stream ahead of its first action) and periodic
	// MeetLive compaction so dead state is reclaimed on long streams.
	en := hb.New()
	ccfg := core.Config{Engine: d.cfg.engine, MaxRaces: d.cfg.maxRaces}
	if d.cfg.reporter != nil {
		rw := d.cfg.reporter
		ccfg.OnRace = func(r core.Race) {
			_, spec := d.repFor(r.Obj)
			rw.Write(r, spec)
		}
	}
	p := pipeline.New(pipeline.Config{Shards: d.cfg.shards, Core: ccfg})
	registered := map[trace.ObjID]bool{}
	var procErr error
	events, sinceCompact := 0, 0
	for e := range queue {
		if procErr != nil {
			continue // drain so the reader never blocks forever
		}
		events++
		sinceCompact++
		if _, err := en.Process(&e); err != nil {
			procErr = fmt.Errorf("event %d (%s): %w", e.Seq, e.String(), err)
			continue
		}
		if e.Kind == trace.ActionEvent && !registered[e.Act.Obj] {
			rep, _ := d.repFor(e.Act.Obj)
			p.Register(e.Act.Obj, rep)
			registered[e.Act.Obj] = true
		}
		p.Process(&e)
		if e.Kind == trace.JoinEvent && d.cfg.compactOps > 0 && sinceCompact >= d.cfg.compactOps {
			p.Compact(en.MeetLive())
			sinceCompact = 0
		}
	}
	if err := p.Close(); err != nil && procErr == nil {
		procErr = err
	}
	st := p.Stats()
	obsEvents.Add(uint64(events))
	obsRaces.Add(uint64(st.Races))

	sum := wire.Summary{Events: events, Races: st.Races, Clean: clean.Load()}
	if procErr != nil {
		sum.Error = procErr.Error()
	} else if s, ok := readErr.Load().(string); ok && s != "" {
		sum.Error = s
	}
	return sum
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
