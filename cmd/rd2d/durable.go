package main

// Durable sessions (DESIGN.md §15): with -statedir every resumable session
// (one that opened with a client session id) is persistently checkpointed,
// so a daemon crash — SIGKILL included — loses nothing a client cannot
// replay. Two files per session under <statedir>/<sid>/:
//
//   wal        a valid RDB2 stream: the stream header, then every accepted
//              events frame appended verbatim (byte-identical: the wire
//              format has no encoding freedom) *before* the frame's chunk
//              is acknowledged to the client. A frame the client saw acked
//              is therefore on disk; a torn tail frame was never acked and
//              the client replays it on resume.
//   snap.ckpt  an RDS1 CRC-framed snapshot (internal/wire.StateWriter) of
//              the session at a frame boundary: decoder state (interning,
//              chunk cursor, degradation counters), happens-before engine
//              clocks, merged detector state, reporter seq, and metadata.
//              Written to a temp file and renamed, so a *process* crash can
//              never tear it; a machine crash without -fsync can, and the
//              loader falls back to replaying the WAL from byte zero.
//
// Recovery replays the WAL tail from the snapshot's frame offset through
// the ordinary decode → queue → worker path, with the JSONL reporter's
// suppression window (core.SessionReporter.Restore) making regenerated
// race records silent up to the report file's durable high-water mark.
// Verdicts after a crash+restart are byte-identical to the uninterrupted
// run because replay *is* the run: same bytes, same decoder state, same
// engine clocks, same detector state.
//
// Checkpoints happen only on the session worker (or fleet quantum) at
// frame boundaries the decoder hook published, so the snapshot's three
// states agree on a single stream position. fsync policy is -fsync
// off|ckpt|always: the page cache survives a process SIGKILL, so even
// "off" is crash-safe against process death; "ckpt"/"always" extend the
// guarantee to machine crashes.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Checkpoint metrics. All sit on the obscheck zero-alloc disabled path.
var (
	obsCkptSnapshots  = obs.GetCounter("rd2d.ckpt.snapshots")
	obsCkptBytes      = obs.GetCounter("rd2d.ckpt.bytes")
	obsCkptNs         = obs.GetCounter("rd2d.ckpt.ns")
	obsCkptWalAppends = obs.GetCounter("rd2d.ckpt.wal_appends")
	obsCkptRestores   = obs.GetCounter("rd2d.ckpt.restores")
	obsCkptTorn       = obs.GetCounter("rd2d.ckpt.torn_recoveries")
)

// fsync policy for the state dir.
const (
	fsyncOff    = iota // never fsync: crash-safe against process death only
	fsyncCkpt          // fsync WAL + snapshot at each checkpoint
	fsyncAlways        // additionally fsync the WAL on every frame append
)

func parseFsyncMode(s string) (int, error) {
	switch s {
	case "off":
		return fsyncOff, nil
	case "ckpt":
		return fsyncCkpt, nil
	case "always":
		return fsyncAlways, nil
	}
	return 0, fmt.Errorf("unknown -fsync mode %q (want off, ckpt, or always)", s)
}

// DefaultCkptEvery is the default checkpoint cadence, in events.
const DefaultCkptEvery = 4096

// errDurClosed marks WAL appends after the session's state was destroyed.
var errDurClosed = errors.New("durable: session state destroyed")

// boundary is a frame boundary the decoder hook published: the WAL offset
// where the frame starts, the cumulative event count of all frames before
// it, and the decoder's cross-frame state at that point. A snapshot taken
// at a boundary resumes by replaying the WAL from off — re-decoding the
// boundary's own frame first.
type boundary struct {
	off int64
	cum int
	st  wire.DecoderState
}

// durSession is one session's persistent state: the open WAL and the FIFO
// of frame boundaries the worker may checkpoint at. The hook side (WAL
// append, boundary publish) runs on the connection read loop; the
// checkpoint side (boundary take, snapshot) runs on the session worker;
// mu covers the shared fields.
type durSession struct {
	d     *daemon
	sid   string
	dir   string
	every int // checkpoint cadence in events
	fsync int

	mu       sync.Mutex
	wal      *os.File
	walOff   int64
	bounds   []boundary
	walErr   error
	buf      []byte // frame re-encode scratch (hook side only)
	lastCkpt int    // events at the last snapshot (worker + rehydrator)
	force    bool   // replayed a WAL tail: snapshot at the next boundary

	// Worker-side only.
	ckptErr error // first snapshot failure; disables further snapshots
	ckpts   int
}

// sanitizeSID maps a client session id to a filesystem-safe directory
// name: the id itself when it is plain, a hex encoding otherwise. Plain
// ids never start with "enc-" (those are encoded), so the mapping is
// injective.
func sanitizeSID(sid string) string {
	plain := sid != "" && len(sid) <= 64 && sid[0] != '.' && !hasPrefix(sid, "enc-")
	for i := 0; plain && i < len(sid); i++ {
		c := sid[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '_' || c == '-'
		plain = plain && ok
	}
	if plain {
		return sid
	}
	return "enc-" + hex.EncodeToString([]byte(sid))
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// openDurSession creates the state dir for a brand-new durable session,
// discarding any stale leftovers under the same id (a fresh session with a
// reused sid supersedes whatever a previous life left behind — resident
// sessions never reach here, routeSession resumes them).
func (d *daemon) openDurSession(sid, tenant string) (*durSession, error) {
	dir := filepath.Join(d.cfg.stateDir, sanitizeSID(sid))
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("durable: clearing %s: %w", dir, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, "wal"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	hdr := wire.AppendStreamHeader(nil, sid, tenant)
	if _, err := wal.Write(hdr); err != nil {
		wal.Close()
		return nil, fmt.Errorf("durable: wal header: %w", err)
	}
	return &durSession{
		d:      d,
		sid:    sid,
		dir:    dir,
		every:  d.ckptEvery(),
		fsync:  d.cfg.fsyncMode,
		wal:    wal,
		walOff: int64(len(hdr)),
	}, nil
}

func (d *daemon) ckptEvery() int {
	if d.cfg.ckptEvery > 0 {
		return d.cfg.ckptEvery
	}
	return DefaultCkptEvery
}

// hook returns the decoder's OnFrameAccepted callback: append the accepted
// frame to the WAL and publish the pre-frame boundary, all before the
// decoder dispatches the frame (and so before its chunk is acked). An
// append failure fails the decode — with -statedir the durability contract
// is part of accepting bytes, so an unwritable WAL refuses ingest loudly
// instead of silently dropping coverage.
func (ds *durSession) hook(dec *wire.Decoder) func(byte, []byte) error {
	return func(kind byte, payload []byte) error {
		ds.mu.Lock()
		defer ds.mu.Unlock()
		if ds.walErr != nil {
			return ds.walErr
		}
		b := boundary{off: ds.walOff, cum: dec.Events(), st: dec.State()}
		ds.buf = wire.AppendFrame(ds.buf[:0], kind, payload)
		if n := ds.d.cfg.injectWalCrash; n > 0 && ds.d.walAppendN.Add(1) == int64(n) {
			// Injected machine crash mid-append: half the frame reaches the
			// disk, then the process dies without further ado.
			ds.wal.Write(ds.buf[:len(ds.buf)/2])
			ds.wal.Sync()
			faultinject.KillSelf()
		}
		if _, err := ds.wal.Write(ds.buf); err != nil {
			ds.walErr = err
			return fmt.Errorf("durable: wal append: %w", err)
		}
		ds.walOff += int64(len(ds.buf))
		if ds.fsync == fsyncAlways {
			if err := ds.wal.Sync(); err != nil {
				ds.walErr = err
				return fmt.Errorf("durable: wal fsync: %w", err)
			}
		}
		ds.bounds = append(ds.bounds, b)
		obsCkptWalAppends.Inc()
		return nil
	}
}

// takeBoundary resolves the worker's position against the published
// boundaries: boundaries strictly behind events are dropped (missed
// checkpoint opportunities — never incorrect), and when the cadence (or a
// post-replay force) makes a snapshot due, the latest boundary exactly at
// events is popped and returned. Duplicate-chunk frames publish zero-event
// boundaries at the same cum; the latest wins so a resume replays the
// least.
func (ds *durSession) takeBoundary(events int) (boundary, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	i := 0
	for i < len(ds.bounds) && ds.bounds[i].cum < events {
		i++
	}
	ds.bounds = ds.bounds[i:]
	if !ds.force && events-ds.lastCkpt < ds.every {
		return boundary{}, false
	}
	j := 0
	for j < len(ds.bounds) && ds.bounds[j].cum == events {
		j++
	}
	if j == 0 {
		return boundary{}, false
	}
	b := ds.bounds[j-1]
	ds.bounds = ds.bounds[j:]
	return b, true
}

// ckptDone records a successful snapshot at cum events.
func (ds *durSession) ckptDone(cum int) {
	ds.mu.Lock()
	ds.lastCkpt = cum
	ds.force = false
	ds.mu.Unlock()
}

// ckptDueAt reports the nearest published boundary past cur at which a
// checkpoint would be due, for the chunked worker to cap its drains at
// (chunks must not straddle a boundary the worker intends to snapshot at,
// or the engine stamps past it; capping at a boundary that turns out not
// due only costs a shorter chunk, never correctness).
func (ds *durSession) ckptDueAt(cur int) (int, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	for _, b := range ds.bounds {
		if b.cum > cur {
			if ds.force || b.cum-ds.lastCkpt >= ds.every {
				return b.cum, true
			}
			return 0, false
		}
	}
	return 0, false
}

// pushBoundary publishes a boundary directly (the WAL replay path, where
// frames are already on disk and only the positions are rebuilt).
func (ds *durSession) pushBoundary(b boundary) {
	ds.mu.Lock()
	ds.bounds = append(ds.bounds, b)
	ds.mu.Unlock()
}

// destroy closes and removes the session's on-disk state — the session
// completed (summary written, TTL expired, or drain) and its durability
// obligation ended with it.
func (ds *durSession) destroy() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.wal != nil {
		ds.wal.Close()
		ds.wal = nil
	}
	ds.walErr = errDurClosed
	os.RemoveAll(ds.dir)
}

// snapMeta is the snapshot's metadata section.
type snapMeta struct {
	SID         string
	Tenant      string
	Spec        string // default spec at snapshot time; mismatch discards the state
	Events      int    // cumulative events at the boundary
	WalOff      int64  // WAL offset resume replays from
	Resumes     int
	ReporterSeq uint64 // JSONL records written for this session so far
	Registered  []trace.ObjID
	DecState    wire.DecoderState
}

// maybeCheckpoint snapshots the session at the current position when a
// published boundary lands exactly here and the cadence (or a post-replay
// force) says it is due. Called by the worker before processing each event
// (serial, fleet) or between chunks (chunked), so the engine has stamped
// exactly the events the boundary covers. A degraded or failed session is
// never checkpointed — partial state must not shadow the honest WAL.
func (s *session) maybeCheckpoint() {
	ds := s.dur
	if ds == nil || ds.ckptErr != nil || s.panicked || s.procErr != nil {
		return
	}
	b, ok := ds.takeBoundary(s.events)
	if !ok {
		return
	}
	if err := s.checkpoint(b); err != nil {
		ds.ckptErr = err
		s.logf("checkpoint failed (continuing without snapshots, WAL still covers the session): %v", err)
		return
	}
	ds.ckptDone(b.cum)
	ds.ckpts++
}

// checkpoint writes one snapshot at boundary b: quiesce and export the
// detection state, serialize, and atomically replace snap.ckpt.
func (s *session) checkpoint(b boundary) error {
	ds := s.dur
	start := time.Now()
	var det *core.DetectorState
	var err error
	if s.p != nil {
		det, err = s.p.ExportState()
		if err != nil {
			return err
		}
	} else {
		det = s.runner.det.ExportState()
	}
	en := s.en.ExportState()
	// Reporter seq after the export barrier: every race from events <= b.cum
	// has been written (pipeline OnRace runs on shard goroutines; the
	// barrier is the quiesce point). The JSONL file is written unbuffered,
	// so its on-disk high-water mark is always >= any snapshot's seq.
	var rseq uint64
	if s.sr != nil {
		rseq = s.sr.Seq()
	}
	meta := snapMeta{
		SID:         s.sid,
		Tenant:      s.tenant,
		Spec:        s.d.cfg.defaultSpec,
		Events:      b.cum,
		WalOff:      b.off,
		ReporterSeq: rseq,
		DecState:    b.st,
	}
	s.mu.Lock()
	meta.Resumes = s.resumes
	s.mu.Unlock()
	for obj := range s.registered {
		meta.Registered = append(meta.Registered, obj)
	}
	sort.Slice(meta.Registered, func(i, j int) bool { return meta.Registered[i] < meta.Registered[j] })

	var buf bytes.Buffer
	if err := writeSnapshot(&buf, &meta, en, det); err != nil {
		return err
	}
	data := buf.Bytes()

	if ds.fsync >= fsyncCkpt {
		// The snapshot references WAL offsets; make the WAL durable first.
		// (nil mid-rehydration: replayed frames are already on disk.)
		ds.mu.Lock()
		var werr error
		if ds.wal != nil {
			werr = ds.wal.Sync()
		}
		ds.mu.Unlock()
		if werr != nil {
			return werr
		}
	}
	path := filepath.Join(ds.dir, "snap.ckpt")
	if n := s.d.cfg.injectCkptCrash; n > 0 && s.d.snapshotN.Add(1) == int64(n) {
		// Injected fsync-less machine crash: a torn snapshot lands in place
		// (bypassing the tmp+rename discipline, which a pure process crash
		// cannot defeat), then the process dies. Recovery must reject it by
		// CRC and fall back to genesis WAL replay.
		os.WriteFile(path, data[:len(data)/2], 0o644)
		faultinject.KillSelf()
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if ds.fsync >= fsyncCkpt {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if ds.fsync >= fsyncCkpt {
		if dirf, err := os.Open(ds.dir); err == nil {
			dirf.Sync()
			dirf.Close()
		}
	}
	obsCkptSnapshots.Inc()
	obsCkptBytes.Add(uint64(len(data)))
	obsCkptNs.Add(uint64(time.Since(start)))
	return nil
}

// --- Snapshot serialization ------------------------------------------------

// Snapshot section kinds.
const (
	snapSecMeta     = 1
	snapSecEngine   = 2
	snapSecDetector = 3
)

func writeSnapshot(w io.Writer, meta *snapMeta, en *hb.EngineState, det *core.DetectorState) error {
	sw := wire.NewStateWriter(w)

	sw.Begin(snapSecMeta)
	sw.String(meta.SID)
	sw.String(meta.Tenant)
	sw.String(meta.Spec)
	sw.Varint(int64(meta.Events))
	sw.Varint(meta.WalOff)
	sw.Varint(int64(meta.Resumes))
	sw.Uvarint(meta.ReporterSeq)
	sw.Uvarint(uint64(len(meta.Registered)))
	for _, obj := range meta.Registered {
		sw.Varint(int64(obj))
	}
	st := &meta.DecState
	sw.Uvarint(uint64(st.Version))
	sw.String(st.SID)
	sw.String(st.Tenant)
	sw.Uvarint(uint64(len(st.Intern)))
	for _, s := range st.Intern {
		sw.String(s)
	}
	sw.Varint(int64(st.Events))
	sw.Varint(int64(st.Frames))
	sw.Uvarint(st.ExpectChunk)
	sw.Bool(st.SeenChunk)
	sw.Varint(int64(st.DupChunks))
	sw.Varint(st.SkippedBytes)
	sw.Varint(int64(st.SkippedFrames))
	sw.Varint(int64(st.Resyncs))
	if err := sw.End(); err != nil {
		return err
	}

	sw.Begin(snapSecEngine)
	sw.Uvarint(uint64(len(en.Threads)))
	for _, tc := range en.Threads {
		sw.Bool(tc.Seen)
		sw.Bool(tc.Dead)
		putVC(sw, tc.Clock)
	}
	sw.Uvarint(uint64(len(en.Locks)))
	for _, lc := range en.Locks {
		sw.Varint(int64(lc.Lock))
		putVC(sw, lc.Clock)
	}
	sw.Uvarint(uint64(len(en.Chans)))
	for _, cc := range en.Chans {
		sw.Varint(int64(cc.Chan))
		sw.Uvarint(uint64(len(cc.Queue)))
		for _, c := range cc.Queue {
			putVC(sw, c)
		}
	}
	if err := sw.End(); err != nil {
		return err
	}

	sw.Begin(snapSecDetector)
	sw.Uvarint(uint64(len(det.Objects)))
	for _, oe := range det.Objects {
		sw.Varint(int64(oe.Obj))
		sw.Uvarint(uint64(len(oe.Points)))
		for _, pe := range oe.Points {
			sw.Varint(int64(pe.Pt.Class))
			putValue(sw, pe.Pt.Val)
			sw.Varint(int64(pe.Epoch.T))
			sw.Uvarint(pe.Epoch.C)
			putVC(sw, pe.VC)
			putAction(sw, pe.LastAct)
			sw.Varint(int64(pe.LastThread))
			sw.Varint(int64(pe.LastSeq))
		}
	}
	sw.Uvarint(uint64(len(det.RacyObjs)))
	for _, obj := range det.RacyObjs {
		sw.Varint(int64(obj))
	}
	sw.Varint(int64(det.DeadRacy))
	sw.Varint(int64(det.Stats.Actions))
	sw.Varint(int64(det.Stats.Checks))
	sw.Varint(int64(det.Stats.Races))
	sw.Varint(int64(det.Stats.RacyEvents))
	sw.Varint(int64(det.Stats.ActivePoints))
	sw.Varint(int64(det.Stats.PeakActive))
	sw.Varint(int64(det.Stats.Reclaimed))
	if err := sw.End(); err != nil {
		return err
	}
	return sw.Close()
}

func putVC(sw *wire.StateWriter, c vclock.VC) {
	if c == nil {
		sw.Bool(false)
		return
	}
	sw.Bool(true)
	sw.Uvarint(uint64(len(c)))
	for _, v := range c {
		sw.Uvarint(v)
	}
}

func putValue(sw *wire.StateWriter, v trace.Value) {
	sw.Uvarint(uint64(v.Kind()))
	switch v.Kind() {
	case trace.Int:
		sw.Varint(v.Int())
	case trace.Str:
		sw.String(v.Str())
	case trace.Bool:
		sw.Bool(v.Bool())
	}
}

func putAction(sw *wire.StateWriter, a trace.Action) {
	sw.Varint(int64(a.Obj))
	sw.String(a.Method)
	sw.Uvarint(uint64(len(a.Args)))
	for _, v := range a.Args {
		putValue(sw, v)
	}
	sw.Uvarint(uint64(len(a.Rets)))
	for _, v := range a.Rets {
		putValue(sw, v)
	}
}

// loadSnapshot reads and CRC-validates a snapshot file. Any failure —
// missing file, torn write, bitrot, truncation — is an error the caller
// answers with genesis WAL replay; a snapshot is an optimization, never
// the source of truth.
func loadSnapshot(path string) (*snapMeta, *hb.EngineState, *core.DetectorState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	sr, err := wire.NewStateReader(f)
	if err != nil {
		return nil, nil, nil, err
	}
	var meta *snapMeta
	var en *hb.EngineState
	var det *core.DetectorState
	for {
		kind, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, nil, err
		}
		switch kind {
		case snapSecMeta:
			meta = readMeta(sr)
		case snapSecEngine:
			en = readEngine(sr)
		case snapSecDetector:
			det = readDetector(sr)
		}
		if err := sr.Err(); err != nil {
			return nil, nil, nil, err
		}
	}
	if meta == nil || en == nil || det == nil {
		return nil, nil, nil, fmt.Errorf("durable: snapshot %s is missing sections", path)
	}
	return meta, en, det, nil
}

func readMeta(sr *wire.StateReader) *snapMeta {
	m := &snapMeta{
		SID:         sr.String(),
		Tenant:      sr.String(),
		Spec:        sr.String(),
		Events:      sr.Int(),
		WalOff:      sr.Varint(),
		Resumes:     sr.Int(),
		ReporterSeq: sr.Uvarint(),
	}
	n := sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		m.Registered = append(m.Registered, trace.ObjID(sr.Int()))
	}
	st := &m.DecState
	st.Version = byte(sr.Uvarint())
	st.SID = sr.String()
	st.Tenant = sr.String()
	n = sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		st.Intern = append(st.Intern, sr.String())
	}
	st.Events = sr.Int()
	st.Frames = sr.Int()
	st.ExpectChunk = sr.Uvarint()
	st.SeenChunk = sr.Bool()
	st.DupChunks = sr.Int()
	st.SkippedBytes = sr.Varint()
	st.SkippedFrames = sr.Int()
	st.Resyncs = sr.Int()
	return m
}

func readEngine(sr *wire.StateReader) *hb.EngineState {
	en := &hb.EngineState{}
	n := sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		tc := hb.ThreadClock{Seen: sr.Bool(), Dead: sr.Bool(), Clock: getVC(sr)}
		en.Threads = append(en.Threads, tc)
	}
	n = sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		en.Locks = append(en.Locks, hb.LockClock{Lock: trace.LockID(sr.Int()), Clock: getVC(sr)})
	}
	n = sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		cc := hb.ChanClocks{Chan: trace.ChanID(sr.Int())}
		q := sr.Uvarint()
		for j := uint64(0); j < q && sr.Err() == nil; j++ {
			cc.Queue = append(cc.Queue, getVC(sr))
		}
		en.Chans = append(en.Chans, cc)
	}
	return en
}

func readDetector(sr *wire.StateReader) *core.DetectorState {
	det := &core.DetectorState{}
	n := sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		oe := core.ObjectExport{Obj: trace.ObjID(sr.Int())}
		pn := sr.Uvarint()
		for j := uint64(0); j < pn && sr.Err() == nil; j++ {
			pe := core.PointExport{}
			pe.Pt.Class = sr.Int()
			pe.Pt.Val = getValue(sr)
			pe.Epoch.T = vclock.Tid(sr.Int())
			pe.Epoch.C = sr.Uvarint()
			pe.VC = getVC(sr)
			pe.LastAct = getAction(sr)
			pe.LastThread = vclock.Tid(sr.Int())
			pe.LastSeq = sr.Int()
			oe.Points = append(oe.Points, pe)
		}
		det.Objects = append(det.Objects, oe)
	}
	n = sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		det.RacyObjs = append(det.RacyObjs, trace.ObjID(sr.Int()))
	}
	det.DeadRacy = sr.Int()
	det.Stats.Actions = sr.Int()
	det.Stats.Checks = sr.Int()
	det.Stats.Races = sr.Int()
	det.Stats.RacyEvents = sr.Int()
	det.Stats.ActivePoints = sr.Int()
	det.Stats.PeakActive = sr.Int()
	det.Stats.Reclaimed = sr.Int()
	return det
}

func getVC(sr *wire.StateReader) vclock.VC {
	if !sr.Bool() {
		return nil
	}
	n := sr.Uvarint()
	c := make(vclock.VC, 0, n)
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		c = append(c, sr.Uvarint())
	}
	return c
}

func getValue(sr *wire.StateReader) trace.Value {
	switch trace.Kind(sr.Uvarint()) {
	case trace.Int:
		return trace.IntValue(sr.Varint())
	case trace.Str:
		return trace.StrValue(sr.String())
	case trace.Bool:
		return trace.BoolValue(sr.Bool())
	}
	return trace.NilValue
}

func getAction(sr *wire.StateReader) trace.Action {
	a := trace.Action{Obj: trace.ObjID(sr.Int()), Method: sr.String()}
	n := sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		a.Args = append(a.Args, getValue(sr))
	}
	n = sr.Uvarint()
	for i := uint64(0); i < n && sr.Err() == nil; i++ {
		a.Rets = append(a.Rets, getValue(sr))
	}
	return a
}

// --- Restore ---------------------------------------------------------------

// sessionRestore carries a rehydrated session's checkpointed state into
// newSession and the worker. A genesis restore (no usable snapshot) has
// nil hb/det and zero meta except identity: the WAL replays from byte 0.
type sessionRestore struct {
	meta       snapMeta
	hb         *hb.EngineState
	det        *core.DetectorState
	durableSeq uint64 // report file's high-water JSONL seq for this session
	dur        *durSession
}

// applyRestore imports the checkpointed detection state into the worker's
// fresh engine and detector/pipeline. Runs on the goroutine that owns them
// (session worker or startFleet), before any event is processed. A restore
// failure poisons the session (procErr) rather than silently analyzing
// from the wrong state.
func (s *session) applyRestore() {
	r := s.restore
	if r == nil || r.hb == nil {
		return
	}
	fail := func(err error) {
		s.procErr = fmt.Errorf("restore: %w", err)
		s.degraded = true
	}
	if err := s.en.ImportState(r.hb); err != nil {
		fail(err)
		return
	}
	repFor := func(obj trace.ObjID) (ap.Rep, error) {
		rep, _ := s.d.repFor(obj)
		if s.wrapRep != nil {
			rep = s.wrapRep(rep)
		}
		return rep, nil
	}
	if s.p != nil {
		if err := s.p.ImportState(r.det, repFor); err != nil {
			fail(err)
			return
		}
	} else {
		if err := s.runner.det.ImportState(r.det, repFor); err != nil {
			fail(err)
			return
		}
	}
	for _, obj := range r.meta.Registered {
		s.registered[obj] = true
	}
	s.events = r.meta.Events
}

// rehydrate loads every checkpointed session from the state dir into the
// parked-session table, before the daemon starts serving: expired state is
// garbage-collected, snapshots are validated (CRC) and fall back to
// genesis WAL replay, WAL tails are replayed through the ordinary worker
// path, and torn tail frames are truncated (the client never saw their
// ack, so it replays them on resume).
func (d *daemon) rehydrate() {
	if err := os.MkdirAll(d.cfg.stateDir, 0o755); err != nil {
		d.cfg.logger.Printf("statedir: %v", err)
		return
	}
	entries, err := os.ReadDir(d.cfg.stateDir)
	if err != nil {
		d.cfg.logger.Printf("statedir: %v", err)
		return
	}
	for _, ent := range entries {
		if ent.IsDir() {
			d.rehydrateOne(filepath.Join(d.cfg.stateDir, ent.Name()))
		}
	}
}

// rehydrateOne restores one session directory, or removes it when it is
// expired or unreadable.
func (d *daemon) rehydrateOne(dir string) {
	walPath := filepath.Join(dir, "wal")
	fi, err := os.Stat(walPath)
	if err != nil {
		d.cfg.logger.Printf("statedir: %s has no wal, removing", dir)
		os.RemoveAll(dir)
		return
	}
	ttl := d.cfg.resumeTTL
	if ttl <= 0 {
		ttl = DefaultResumeTTL
	}
	age := time.Since(fi.ModTime())
	if sfi, err := os.Stat(filepath.Join(dir, "snap.ckpt")); err == nil {
		if sage := time.Since(sfi.ModTime()); sage < age {
			age = sage
		}
	}
	if age > ttl {
		// The session's resume TTL elapsed while the daemon was down: the
		// client has long given up. GC, exactly as a live expiry would —
		// and never resurrect its stale JSONL seq window.
		d.cfg.logger.Printf("statedir: %s expired (%v old, ttl %v), removing", dir, age.Round(time.Second), ttl)
		os.RemoveAll(dir)
		return
	}

	restore := &sessionRestore{}
	meta, en, det, serr := loadSnapshot(filepath.Join(dir, "snap.ckpt"))
	if serr == nil && meta.Spec != d.cfg.defaultSpec {
		d.cfg.logger.Printf("statedir: %s was checkpointed under spec %q, daemon runs %q: discarding state",
			dir, meta.Spec, d.cfg.defaultSpec)
		os.RemoveAll(dir)
		return
	}
	if serr == nil && meta.WalOff > fi.Size() {
		// The snapshot references WAL bytes that never reached the disk: a
		// machine crash after the rename but before the WAL writes landed
		// (impossible for a process crash, or with -fsync ckpt/always).
		serr = fmt.Errorf("references wal offset %d beyond wal end %d", meta.WalOff, fi.Size())
	}
	if serr == nil {
		restore.meta = *meta
		restore.hb = en
		restore.det = det
	} else if !os.IsNotExist(serr) {
		// A snapshot exists but does not validate: torn by a machine crash
		// (tmp+rename means a process crash cannot do this). The WAL is the
		// source of truth; replay it from byte zero.
		obsCkptTorn.Inc()
		d.cfg.logger.Printf("statedir: %s snapshot invalid (%v), genesis WAL replay", dir, serr)
	}

	// Identity: from the snapshot when valid, else from the WAL header.
	sid, tenant := restore.meta.SID, restore.meta.Tenant
	if sid == "" {
		f, err := os.Open(walPath)
		if err != nil {
			os.RemoveAll(dir)
			return
		}
		dec, derr := wire.NewDecoder(f)
		if derr == nil {
			sid, derr = dec.ReadHello()
			tenant = dec.Tenant()
		}
		f.Close()
		if derr != nil || sid == "" {
			d.cfg.logger.Printf("statedir: %s wal header unreadable (%v), removing", dir, derr)
			os.RemoveAll(dir)
			return
		}
	}
	if tenant == "" {
		tenant = "default"
	}
	restore.meta.SID, restore.meta.Tenant = sid, tenant
	if d.cfg.reportSeqs != nil {
		restore.durableSeq = d.cfg.reportSeqs[sid]
	}

	release, aerr := d.sched.Admit(tenant)
	if aerr != nil {
		d.cfg.logger.Printf("statedir: %s not admitted (%v), leaving on disk", dir, aerr)
		return
	}

	// lastCkpt is primed before the worker starts: replay republishes
	// boundaries and the worker may legitimately checkpoint mid-replay once
	// the cadence from the snapshot's position says so.
	ds := &durSession{d: d, sid: sid, dir: dir, every: d.ckptEvery(), fsync: d.cfg.fsyncMode,
		lastCkpt: restore.meta.Events}
	restore.dur = ds
	s := d.newSession(sid, tenant, restore)
	s.admit = release
	d.mu.Lock()
	d.sessions[sid] = s
	d.mu.Unlock()

	dec, tail, err := d.replayWAL(s, ds, walPath, restore)
	if err != nil {
		d.cfg.logger.Printf("statedir: %s wal replay: %v", dir, err)
	}
	wal, werr := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	ds.mu.Lock()
	if werr != nil {
		ds.walErr = werr
	} else {
		ds.wal = wal
		if off, err := wal.Seek(0, io.SeekEnd); err == nil {
			ds.walOff = off
		}
	}
	if tail {
		// A replayed tail means the snapshot is stale; refresh at the next
		// boundary. (The worker is already live — lastCkpt/force are shared.)
		ds.force = true
	}
	ds.mu.Unlock()

	s.mu.Lock()
	s.dec = dec // resume connections adopt interning/chunk state from here
	s.resumes = restore.meta.Resumes
	s.mu.Unlock()
	s.park()
	obsCkptRestores.Inc()
	s.logf("rehydrated from %s: %d events checkpointed, tail replay=%v", dir, restore.meta.Events, tail)
}

// replayWAL feeds the WAL's events through the session's ordinary
// queue/worker path: from the snapshot's frame offset with a resumed
// decoder, or from byte zero (genesis). Returns the decoder holding the
// final stream state, and whether any frames beyond the snapshot were
// replayed. A torn or corrupt tail is truncated at the last fully
// consumed frame — those bytes were never acked, so the client replays
// them.
func (d *daemon) replayWAL(s *session, ds *durSession, walPath string, restore *sessionRestore) (*wire.Decoder, bool, error) {
	f, err := os.Open(walPath)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()

	var dec *wire.Decoder
	var startOff int64
	if restore.hb != nil {
		startOff = restore.meta.WalOff
		if _, err := f.Seek(startOff, io.SeekStart); err != nil {
			return nil, false, err
		}
		dec = wire.ResumeDecoder(f, restore.meta.DecState)
	} else {
		dec, err = wire.NewDecoder(f)
		if err != nil {
			return nil, false, err
		}
		if _, err := dec.ReadHello(); err != nil {
			return nil, false, err
		}
		startOff = int64(len(wire.AppendStreamHeader(nil, restore.meta.SID, restore.meta.Tenant)))
	}
	dec.SetObs(s.scope)

	// Rebuild boundaries as frames are re-accepted. tailOff tracks the
	// offset after the last *fully consumed* frame: when the hook fires for
	// frame k+1, frame k's events all reached the queue.
	replayOff := startOff
	tailOff := startOff
	frames := 0
	dec.OnFrameAccepted = func(kind byte, payload []byte) error {
		tailOff = replayOff
		ds.pushBoundary(boundary{off: replayOff, cum: dec.Events(), st: dec.State()})
		replayOff += int64(wire.FrameWireSize(len(payload)))
		frames++
		return nil
	}
	var replayErr error
	for {
		e, err := dec.Next()
		if err != nil {
			if err != io.EOF {
				replayErr = err
			} else {
				tailOff = replayOff // EOF at a frame boundary: everything consumed
			}
			break
		}
		s.queue <- e
		if s.entry != nil {
			s.entry.Wake()
		}
	}
	dec.OnFrameAccepted = nil
	if replayErr != nil {
		// Torn tail: cut the WAL back to the last fully consumed frame.
		obsCkptTorn.Inc()
		if terr := os.Truncate(walPath, tailOff); terr != nil {
			return dec, frames > 0, terr
		}
		d.cfg.logger.Printf("statedir: %s wal torn at %d (%v), truncated to %d",
			ds.dir, replayOff, replayErr, tailOff)
		// Drop the boundary of the frame that failed to replay, if any.
		ds.mu.Lock()
		for len(ds.bounds) > 0 && ds.bounds[len(ds.bounds)-1].off >= tailOff {
			ds.bounds = ds.bounds[:len(ds.bounds)-1]
		}
		ds.mu.Unlock()
	}
	return dec, frames > 0, nil
}

// scanReport reads an existing JSONL report and returns each session's
// durable high-water seq, truncating a torn last line (the report is
// written unbuffered under a lock, so only the final line can be partial).
// Degraded-note records carry a "note" field and do not advance seqs.
func scanReport(path string) (map[string]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]uint64{}, nil
		}
		return nil, err
	}
	if n := bytes.LastIndexByte(data, '\n'); n < len(data)-1 {
		keep := int64(0)
		if n >= 0 {
			keep = int64(n + 1)
		}
		if err := os.Truncate(path, keep); err != nil {
			return nil, err
		}
		data = data[:keep]
	}
	seqs := map[string]uint64{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Session string `json:"session"`
			Seq     uint64 `json:"seq"`
			Note    string `json:"note"`
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.Note != "" || rec.Session == "" {
			continue
		}
		if rec.Seq > seqs[rec.Session] {
			seqs[rec.Session] = rec.Seq
		}
	}
	return seqs, nil
}
