package main

// This file implements the operator surfaces over the per-session metric
// scopes: the /sessions JSON endpoint (one row per live or recently
// finished session, with queue, race, and per-stage latency figures read
// from the session's scope) and the -stats-interval text table. Both read
// the same sessionInfo snapshot, so what an operator tails on stderr is
// what a dashboard scrapes over HTTP.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// stageStat is the per-stage latency digest of one session: span count and
// the p50/p99 of the stage's latency histogram, in nanoseconds.
type stageStat struct {
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
}

// sessionInfo is one /sessions row.
type sessionInfo struct {
	Session  string `json:"session"`           // scope id (client sid or conn-<n>)
	Ordinal  int64  `json:"ordinal"`           // daemon-local session number
	Tenant   string `json:"tenant,omitempty"`  // quota/scheduling tenant
	State    string `json:"state"`             // attached | parked | completed
	Sched    string `json:"sched,omitempty"`   // fleet state: idle | runnable | running | throttled
	Resumes  int    `json:"resumes,omitempty"` // times re-attached after a lost conn
	Events   int    `json:"events"`            // events ingested off the wire
	Races    uint64 `json:"races"`
	Queue    int    `json:"queue"`       // current ingest queue depth, events
	QueuePk  int64  `json:"queue_peak"`  // high-water ingest backlog
	AckedSeq uint64 `json:"acked_chunk"` // last acked chunk seq (resumable streams)
	LastSeq  uint64 `json:"last_seq"`    // last JSONL race record seq stamped
	Degraded bool   `json:"degraded"`
	// Stages holds the per-stage latency digests, keyed by stage name
	// (stage.decode .. stage.report), read from the session scope.
	Stages map[string]stageStat `json:"stages,omitempty"`
}

// info snapshots one session. Detection state owned by the worker is read
// from the session's metric scope (witnessed by atomic loads), never from
// the worker's private fields, so this is safe mid-flight.
func (s *session) info() sessionInfo {
	in := sessionInfo{
		Session: s.name,
		Ordinal: s.id,
		Tenant:  s.tenant,
		Queue:   len(s.queue),
		QueuePk: s.ob.queue.Peak(),
		Races:   s.scope.Counter("core.races").Load(),
	}
	if s.sr != nil {
		in.LastSeq = s.sr.Seq()
	}
	if s.entry != nil {
		in.Sched = s.entry.State()
	}
	s.mu.Lock()
	// A connection stalled in its tenant's throttle overrides the
	// scheduler state: the session is not waiting for a worker, its
	// producer is being rate limited.
	if s.th != nil && s.th.Stalling() {
		in.Sched = "throttled"
	}
	switch s.state {
	case stateParked:
		in.State = "parked"
	case stateCompleted:
		in.State = "completed"
	default:
		in.State = "attached"
	}
	in.Resumes = s.resumes
	if s.dec != nil {
		in.Events = s.dec.Events()
		in.Degraded = s.dec.Degraded()
		if n, ok := s.dec.AckedChunk(); ok {
			in.AckedSeq = n
		}
	}
	s.mu.Unlock()
	// Once final closes the summary is immutable and has the exact figures
	// (including worker panics the decoder cannot see). A session that is
	// still mid-finalize keeps its live approximation — never block a
	// monitoring read on a draining worker.
	select {
	case <-s.final:
		sum := s.summary
		in.Events, in.Races = sum.Events, uint64(sum.Races)
		in.Degraded, in.LastSeq = sum.Degraded, sum.Seq
	default:
	}
	snap := s.scope.Snapshot()
	for name, h := range snap.Timers {
		stage, ok := strings.CutSuffix(name, "_ns")
		if !ok || !strings.HasPrefix(stage, "stage.") || h.Count == 0 {
			continue
		}
		if in.Stages == nil {
			in.Stages = map[string]stageStat{}
		}
		in.Stages[stage] = stageStat{Count: h.Count, P50Ns: h.P50Ns, P99Ns: h.P99Ns}
	}
	return in
}

// sessionInfos snapshots every tracked session, ordered by ordinal.
func (d *daemon) sessionInfos() []sessionInfo {
	d.trackMu.Lock()
	ss := make([]*session, 0, len(d.tracked))
	for _, s := range d.tracked {
		ss = append(ss, s)
	}
	d.trackMu.Unlock()
	out := make([]sessionInfo, 0, len(ss))
	for _, s := range ss {
		out = append(out, s.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ordinal < out[j].Ordinal })
	return out
}

// httpHandler is the daemon's observability mux: the standard obs routes
// (/metrics with ?session= and ?format=prom, /debug/*, /healthz) plus the
// daemon-aware /sessions listing.
func (d *daemon) httpHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.Handler(d.obsRoot()))
	// Readiness: overrides the obs handler's static /healthz with the
	// daemon's lifecycle phase, so load balancers and restart scripts can
	// wait out rehydration and stop routing to a draining daemon.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if p := d.phase.Load(); p != phaseServing {
			http.Error(w, phaseName(p), http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.sessionInfos()) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/tenants", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(d.sched.Tenants()) //nolint:errcheck // client went away
	})
	return mux
}

// startStatsTable emits a compact per-session table to w every interval —
// the text mode of -stats-interval. Returns a stop func.
func (d *daemon) startStatsTable(w io.Writer, every time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		start := time.Now()
		prev := map[string]int{}
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				fmt.Fprint(w, d.formatStatsTable(time.Since(start), every, prev))
			}
		}
	}()
	return func() { close(stop); <-done }
}

// formatStatsTable renders one -stats-interval tick: a row per session and
// a global roll-up footer. prev carries each session's event count from the
// last tick for the events/s column.
func (d *daemon) formatStatsTable(up, every time.Duration, prev map[string]int) string {
	infos := d.sessionInfos()
	var b strings.Builder
	fmt.Fprintf(&b, "-- rd2d sessions @ %s --\n", up.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-24s %-12s %-10s %-10s %10s %8s %7s %7s\n",
		"SESSION", "TENANT", "STATE", "SCHED", "EVENTS", "EV/S", "QUEUE", "RACES")
	totEvents, totRate, totQueue, totRaces := 0, 0.0, 0, uint64(0)
	tenantRate := map[string]float64{}
	seen := map[string]bool{}
	for _, in := range infos {
		rate := float64(in.Events-prev[in.Session]) / every.Seconds()
		if rate < 0 {
			rate = 0
		}
		prev[in.Session] = in.Events
		seen[in.Session] = true
		flags := ""
		if in.Degraded {
			flags = " !degraded"
		}
		sched := in.Sched
		if sched == "" {
			sched = "-"
		}
		fmt.Fprintf(&b, "  %-24s %-12s %-10s %-10s %10d %8.0f %7d %7d%s\n",
			in.Session, in.Tenant, in.State, sched, in.Events, rate, in.Queue, in.Races, flags)
		totEvents += in.Events
		totRate += rate
		totQueue += in.Queue
		totRaces += in.Races
		tenantRate[in.Tenant] += rate
	}
	for name := range prev {
		if !seen[name] {
			delete(prev, name) // session lingered out; stop charging its rate
		}
	}
	fmt.Fprintf(&b, "  %-24s %-12s %-10s %-10s %10d %8.0f %7d %7d\n",
		"TOTAL", "", fmt.Sprintf("%d sess", len(infos)), "", totEvents, totRate, totQueue, totRaces)
	// Per-tenant rollup: resident sessions, cumulative throttled events,
	// admission rejects, and this tick's ingest rate.
	for _, ts := range d.sched.Tenants() {
		fmt.Fprintf(&b, "  tenant %-17s %12s %8.0f ev/s %8d rejects\n",
			ts.Name, fmt.Sprintf("%d sess", ts.Sessions), tenantRate[ts.Name], ts.Rejects)
	}
	return b.String()
}
