package main

// Fleet-mode acceptance: the shared-worker scheduler must be a drop-in
// replacement for the per-connection pipeline (identical verdicts over the
// corpus), enforce admission and per-tenant quotas at the wire, keep its
// goroutine count O(workers) rather than O(sessions), stay fair to
// background tenants under a saturating hot tenant, and survive the chaos
// harness (hundreds of severed-and-resumed sessions across tenants) with
// no lost or duplicated verdicts.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// streamOnce runs one plain-client session against d and returns the summary.
func streamOnce(t *testing.T, d *daemon, tr *trace.Trace, tenant string) wire.Summary {
	t.Helper()
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		if err := cl.SetTenant(tenant); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

// TestFleetDifferentialCorpus is the fleet-vs-perconn oracle: every corpus
// trace must produce the identical summary and the identical JSONL race set
// whether it runs on a dedicated pipeline or on the shared worker pool.
// Compaction is disabled on both sides so reported point clocks render
// byte-identically regardless of when a worker got around to compacting.
func TestFleetDifferentialCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "traces", "*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus traces found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			tr := loadCorpusTrace(t, path)
			if tr.Len() == 0 {
				t.Skip("empty trace")
			}

			run := func(fleetMode bool) (wire.Summary, []string) {
				var report bytes.Buffer
				d, done := testDaemonCfg(t, &report, func(c *daemonConfig) {
					c.compactOps = 0
					if fleetMode {
						c.fleet = true
						c.fleetWorkers = 2
					}
				})
				sum := streamOnce(t, d, tr, "")
				d.Shutdown()
				if err := <-done; err != nil {
					t.Fatalf("Serve: %v", err)
				}
				return sum, raceLines(t, &report)
			}

			baseSum, baseRaces := run(false)
			fleetSum, fleetRaces := run(true)

			if baseSum.Error != "" || !baseSum.Clean || baseSum.Events != tr.Len() {
				t.Fatalf("per-conn summary %+v, want clean over %d events", baseSum, tr.Len())
			}
			if fleetSum.Error != "" || !fleetSum.Clean || fleetSum.Events != tr.Len() {
				t.Fatalf("fleet summary %+v, want clean over %d events", fleetSum, tr.Len())
			}
			if fleetSum.Races != baseSum.Races {
				t.Fatalf("fleet found %d races, per-conn found %d", fleetSum.Races, baseSum.Races)
			}
			if len(fleetRaces) != len(baseRaces) {
				t.Fatalf("fleet wrote %d race records, per-conn %d", len(fleetRaces), len(baseRaces))
			}
			for i := range fleetRaces {
				if fleetRaces[i] != baseRaces[i] {
					t.Fatalf("race record %d differs:\n  fleet:    %s\n  per-conn: %s",
						i, fleetRaces[i], baseRaces[i])
				}
			}
		})
	}
}

// TestMaxSessionsCapWithoutFleet checks the -max-sessions hard cap with
// fleet scheduling OFF: the scheduler still gates admission, the cap+1-th
// connection gets an explicit busy summary (ErrBusy at the client), the
// reject is counted in obs, and releasing a session frees the slot.
func TestMaxSessionsCapWithoutFleet(t *testing.T) {
	obs.SetEnabled(true)
	busyBefore := obsBusy.Load()
	tr, _ := racyTrace(t)
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.maxSessions = 2
	})

	// Two resident sessions: hello + one event each, connection held open.
	var held []*wire.Client
	for i := 0; i < 2; i++ {
		cl, err := wire.Dial(d.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, cl)
		if err := cl.WriteEvent(&tr.Events[0]); err != nil {
			t.Fatal(err)
		}
		if err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitTenantSessions(t, d, fleet.DefaultTenant, 2)

	// The third hello must be shed with a wire-level busy reject.
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteEvent(&tr.Events[0]); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(5 * time.Second)
	if !errors.Is(err, wire.ErrBusy) {
		t.Fatalf("over-cap close: err = %v, want ErrBusy (summary %+v)", err, sum)
	}
	if !sum.Busy || sum.Error == "" {
		t.Fatalf("over-cap summary %+v, want busy with a reason", sum)
	}
	if got := obsBusy.Load(); got != busyBefore+1 {
		t.Fatalf("busy reject counter = %d, want %d", got, busyBefore+1)
	}

	// Dropping one resident session frees its slot for a full run.
	held[0].Abort()
	waitTenantSessions(t, d, fleet.DefaultTenant, 1)
	if sum := streamOnce(t, d, tr, ""); sum.Busy || sum.Error != "" {
		t.Fatalf("post-release session: %+v, want admitted and clean", sum)
	}

	held[1].Abort()
	waitTenantSessions(t, d, fleet.DefaultTenant, 0)
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// waitTenantSessions polls the scheduler until the tenant holds exactly n
// resident sessions (0 is satisfied by the tenant being absent entirely).
func waitTenantSessions(t *testing.T, d *daemon, tenant string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := 0
		for _, ts := range d.sched.Tenants() {
			if ts.Name == tenant {
				got = ts.Sessions
			}
		}
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q has %d resident sessions, want %d", tenant, got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetParkedSessionsGoroutineBudget parks a crowd of resumable fleet
// sessions (connection severed mid-stream, state resident awaiting resume)
// and checks the daemon's goroutine count stayed O(workers): a parked fleet
// session is a run-queue entry plus heap state, not a goroutine. The final
// shutdown then mass-finalizes every parked session through the shared
// workers, which must drain without losing Serve.
func TestFleetParkedSessionsGoroutineBudget(t *testing.T) {
	tr, _ := racyTrace(t)
	const sessions = 24
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.fleet = true
		c.fleetWorkers = 2
		c.idleTimeout = time.Minute // keep parked sessions resident while we count
	})

	baseline := settledGoroutines()

	// Raw stream prefix: header+hello plus the first chunk, then a hard
	// close. All sids share one length so one layout fits every session.
	const frameSize = 96
	layoutSid := sidForPark(0)
	prefix, chunks := sessionLayout(t, tr, frameSize, layoutSid)
	if len(chunks) < 2 {
		t.Fatalf("trace encodes to %d chunks at frame size %d, need >= 2", len(chunks), frameSize)
	}
	for i := 0; i < sessions; i++ {
		sid := sidForPark(i)
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		enc.FrameSize = frameSize
		if err := enc.SetSession(sid); err != nil {
			t.Fatal(err)
		}
		for j := range tr.Events {
			if err := enc.WriteEvent(&tr.Events[j]); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		conn, err := net.Dial("tcp", d.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf.Bytes()[:prefix+chunks[0]]); err != nil {
			t.Fatalf("session %d: write: %v", i, err)
		}
		conn.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		parked := 0
		for _, in := range d.sessionInfos() {
			if in.State == "parked" {
				parked++
			}
		}
		if parked == sessions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d sessions parked, want %d", parked, sessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if got := settledGoroutines(); got > baseline+sessions/2 {
		t.Fatalf("goroutines grew from %d to %d across %d parked sessions; want O(workers), not O(sessions)",
			baseline, got, sessions)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func sidForPark(i int) string { return fmt.Sprintf("park-%03d", i) }

// settledGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree, filtering out goroutines that are mid-exit.
func settledGoroutines() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// TestFleetMultiTenantChaos is the fleet chaos acceptance: ~a hundred
// concurrent resumable sessions spread across three tenants, every one of
// them severed mid-stream by a proxy and resumed, against a fleet daemon
// running each tenant at its session quota. Every session must finish with
// the exact event count and race verdicts of an unsevered baseline — no
// lost or duplicated verdicts — and every quota slot must be released.
func TestFleetMultiTenantChaos(t *testing.T) {
	tr := loadCorpusTrace(t, filepath.Join("..", "..", "examples", "traces", "dict-rand.trace"))

	// Unsevered per-conn baseline for the expected summary and race set.
	var baseReport bytes.Buffer
	bd, bdone := testDaemonCfg(t, &baseReport, func(c *daemonConfig) { c.compactOps = 0 })
	baseSum := streamOnce(t, bd, tr, "")
	bd.Shutdown()
	if err := <-bdone; err != nil {
		t.Fatalf("baseline Serve: %v", err)
	}
	if baseSum.Error != "" || !baseSum.Clean {
		t.Fatalf("baseline summary %+v", baseSum)
	}
	baseRaces := raceLines(t, &baseReport)

	tenants := []string{"red", "blu", "grn"}
	perTenant := 34
	if testing.Short() {
		perTenant = 8
	}
	quotas := map[string]fleet.Quota{}
	for _, tn := range tenants {
		quotas[tn] = fleet.Quota{MaxSessions: perTenant}
	}
	var report bytes.Buffer
	d, done := testDaemonCfg(t, &report, func(c *daemonConfig) {
		c.fleet = true
		c.compactOps = 0
		c.tenantQuotas = quotas
		c.idleTimeout = time.Minute
	})

	// Chunk layout (all sids share one length) for mid-stream cut offsets.
	const frameSize = 128
	prefix, chunks := sessionLayout(t, tr, frameSize, sidForChaos(tenants[0], 0))
	if len(chunks) < 3 {
		t.Fatalf("trace encodes to %d chunks, need >= 3 for varied cuts", len(chunks))
	}
	cutAt := func(i int) int64 {
		// Rotate the sever point across every resumable boundary short of
		// end-of-stream so each session is cut, none trivially completes.
		cut := int64(prefix)
		for k := 0; k <= i%(len(chunks)-1); k++ {
			cut += int64(chunks[k])
		}
		return cut
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*perTenant)
	for _, tn := range tenants {
		for i := 0; i < perTenant; i++ {
			tn, i := tn, i
			wg.Add(1)
			go func() {
				defer wg.Done()
				sid := sidForChaos(tn, i)
				proxy := newSeverProxy(t, d.Addr(), cutAt(i))
				rc, err := wire.DialSession(proxy.addr(), sid, 2*time.Second)
				if err != nil {
					errs <- fmt.Errorf("%s: dial: %w", sid, err)
					return
				}
				if err := rc.SetTenant(tn); err != nil {
					errs <- fmt.Errorf("%s: %w", sid, err)
					return
				}
				rc.SetFrameSize(frameSize)
				rc.Backoff = 5 * time.Millisecond
				rc.Retries = 8
				if err := rc.SendSource(tr.Source()); err != nil {
					errs <- fmt.Errorf("%s: send: %w", sid, err)
					return
				}
				sum, err := rc.Close(30 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("%s: close: %w", sid, err)
					return
				}
				switch {
				case sum.Error != "" || !sum.Clean || sum.Degraded:
					errs <- fmt.Errorf("%s: summary %+v, want clean", sid, sum)
				case sum.Events != tr.Len():
					errs <- fmt.Errorf("%s: %d events analyzed, want %d (no loss, no duplication)", sid, sum.Events, tr.Len())
				case sum.Races != baseSum.Races:
					errs <- fmt.Errorf("%s: %d races, baseline %d", sid, sum.Races, baseSum.Races)
				case sum.Resumes < 1:
					errs <- fmt.Errorf("%s: never resumed (cut=%d)", sid, cutAt(i))
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every quota slot must be back: completed sessions release admission
	// even though their table entries linger for observability.
	for _, tn := range tenants {
		waitTenantSessions(t, d, tn, 0)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// The shared JSONL report must hold exactly perTenant*len(tenants)
	// copies of the baseline race multiset — raceLines already enforced a
	// dense per-session seq, so duplicates or gaps cannot hide.
	got := raceLines(t, &report)
	want := make([]string, 0, len(baseRaces)*len(tenants)*perTenant)
	for _, line := range baseRaces {
		for i := 0; i < len(tenants)*perTenant; i++ {
			want = append(want, line)
		}
	}
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("chaos run wrote %d race records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("race record %d differs:\n  got:  %s\n  want: %s", i, got[i], want[i])
		}
	}
}

func sidForChaos(tenant string, i int) string { return fmt.Sprintf("%s-%03d", tenant, i) }

// hogRunnable is a synthetic always-runnable fleet entry: it claims every
// grant in full and reports more work until stopped, occupying its worker
// for simulated detection time on each quantum.
type hogRunnable struct {
	stop   atomic.Bool
	grants atomic.Int64
}

func (h *hogRunnable) RunQuantum(n int) (int, bool) {
	h.grants.Add(1)
	time.Sleep(50 * time.Microsecond)
	return n, !h.stop.Load()
}

// TestFleetNoStarvationUnderHotTenant pins the pool to ONE worker and
// saturates it with three never-finishing hot-tenant entries registered
// straight on the scheduler, then streams a real background-tenant session
// through the daemon. Deficit round robin owes the background tenant a
// grant every round, so the session must complete with exact verdicts; a
// FIFO or per-session scheduler would starve it behind the infinite hot
// backlog and time out.
func TestFleetNoStarvationUnderHotTenant(t *testing.T) {
	// A few thousand events keep the background session in flight long
	// enough that the worker is demonstrably contended the whole way.
	gen := trace.GenConfig{
		Threads: 4, Objects: 3, Keys: 8, Vals: 4, Locks: 2,
		OpsMin: 500, OpsMax: 500, PSize: 10, PGet: 40, PLocked: 25, PRemove: 25,
	}
	tr := trace.Generate(rand.New(rand.NewSource(7)), gen)
	rep, err := specs.Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	det := core.New(core.Config{})
	for _, e := range tr.Events {
		if e.Kind == trace.ActionEvent {
			det.Register(e.Act.Obj, rep)
		}
	}
	if err := det.RunTrace(tr); err != nil {
		t.Fatal(err)
	}
	wantRaces := det.Stats().Races

	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.fleet = true
		c.fleetWorkers = 1
		c.fleetQuantum = 64
	})

	hogs := make([]*hogRunnable, 3)
	entries := make([]*fleet.Entry, 3)
	for i := range hogs {
		hogs[i] = &hogRunnable{}
		entries[i] = d.sched.Register("hot", hogs[i])
		entries[i].Wake()
	}

	sum := streamOnce(t, d, tr, "bg")
	if sum.Error != "" || !sum.Clean || sum.Events != tr.Len() || sum.Races != wantRaces {
		t.Fatalf("background summary %+v, want clean with %d events / %d races",
			sum, tr.Len(), wantRaces)
	}
	// The hot tenant really was saturating the single worker the whole time.
	var hotGrants int64
	for _, h := range hogs {
		hotGrants += h.grants.Load()
	}
	if hotGrants < 10 {
		t.Fatalf("hot tenant got only %d grants; the worker was never contended", hotGrants)
	}

	for i, h := range hogs {
		h.stop.Store(true)
		entries[i].Close()
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestFleetTenantSurfaces checks the operator surfaces grew the tenant
// dimension: /sessions rows carry tenant and scheduler state, the stats
// table prints a per-tenant rollup, and /tenants serves the scheduler's
// per-tenant snapshot.
func TestFleetTenantSurfaces(t *testing.T) {
	obs.SetEnabled(true)
	tr, wantRaces := racyTrace(t)
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.fleet = true
		c.fleetWorkers = 2
	})
	if sum := streamOnce(t, d, tr, "acme"); sum.Races != wantRaces || sum.Error != "" {
		t.Fatalf("summary %+v, want %d races", sum, wantRaces)
	}

	var row *sessionInfo
	for _, in := range d.sessionInfos() {
		in := in
		if in.Tenant == "acme" {
			row = &in
		}
	}
	if row == nil {
		t.Fatal("/sessions has no row for tenant acme")
	}
	if row.Sched == "" {
		t.Fatalf("session row %+v has no scheduler state", row)
	}

	table := d.formatStatsTable(time.Second, time.Second, map[string]int{})
	if !strings.Contains(table, "TENANT") || !strings.Contains(table, "acme") {
		t.Fatalf("stats table missing tenant column or row:\n%s", table)
	}
	if !strings.Contains(table, "tenant acme") {
		t.Fatalf("stats table missing per-tenant rollup:\n%s", table)
	}

	srv := httptest.NewServer(d.httpHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats []fleet.TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range stats {
		if ts.Name == "acme" {
			found = true
			if ts.Events == 0 {
				t.Fatalf("/tenants row %+v shows no ingested events", ts)
			}
		}
	}
	if !found {
		t.Fatalf("/tenants missing tenant acme: %+v", stats)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestFleetSurvivesInjectedWorkerPanic arms the worker panic injector with
// the fleet scheduler on: the quantum's recover must degrade the session
// (partial but honest summary, the runner counted as a failed unit), the
// shared worker pool must keep serving other sessions, and shutdown must
// stay clean — one poisoned session cannot take down the fleet.
func TestFleetSurvivesInjectedWorkerPanic(t *testing.T) {
	tr, _ := racyTrace(t)
	const panicAt = 10
	d, done := testDaemonCfg(t, nil, func(c *daemonConfig) {
		c.fleet = true
		c.fleetWorkers = 2
		c.injectWorkerPanic = panicAt
	})

	sum := streamOnce(t, d, tr, "acme")
	if !sum.Degraded {
		t.Fatalf("fleet worker panic not marked degraded: %+v", sum)
	}
	if sum.ShardPanics < 1 {
		t.Fatalf("summary shard_panics = %d, want >= 1 (the runner)", sum.ShardPanics)
	}
	if sum.Events == 0 || sum.Events >= tr.Len() {
		t.Fatalf("degraded fleet session analyzed %d events, want partial (0 < n < %d)",
			sum.Events, tr.Len())
	}

	// The pool survived: a second session (degraded too — the injector is
	// armed per session) still gets its summary through the same workers.
	sum = streamOnce(t, d, tr, "acme")
	if !sum.Degraded || sum.ShardPanics < 1 {
		t.Fatalf("second fleet session after panic: %+v", sum)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.degraded.Load(); got != 2 {
		t.Fatalf("daemon degraded counter = %d, want 2", got)
	}
}
