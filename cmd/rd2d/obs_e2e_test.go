package main

// End-to-end acceptance for the fleet observability surfaces: two client
// sessions stream concurrently into one daemon wired to a private metric
// registry, and the test checks the operator's view — /sessions rows with
// disjoint per-session figures, all six stage histograms populated, the
// per-session /metrics filter, and a Prometheus scrape whose per-session
// series sum to the rolled-up global series.

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

func TestDaemonObservabilityEndToEnd(t *testing.T) {
	obs.SetEnabled(true)
	root := obs.NewRegistry()

	trA := loadCorpusTrace(t, filepath.Join("..", "..", "examples", "traces", "fig3.trace"))
	trB := loadCorpusTrace(t, filepath.Join("..", "..", "examples", "traces", "dict-rand.trace"))
	if trA.Len() == trB.Len() {
		t.Fatalf("corpus traces must differ in length to prove per-session isolation (both %d)", trA.Len())
	}

	var report bytes.Buffer
	d, done := testDaemonCfg(t, &report, func(c *daemonConfig) { c.obsRoot = root })

	sums := map[string]wire.Summary{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, st := range []struct {
		sid string
		tr  *trace.Trace
	}{{"alpha", trA}, {"beta", trB}} {
		st := st
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := wire.DialSession(d.Addr(), st.sid, 2*time.Second)
			if err != nil {
				t.Errorf("%s: %v", st.sid, err)
				return
			}
			if err := cl.SendSource(st.tr.Source()); err != nil {
				t.Errorf("%s: send: %v", st.sid, err)
				return
			}
			sum, err := cl.Close(15 * time.Second)
			if err != nil {
				t.Errorf("%s: close: %v", st.sid, err)
				return
			}
			mu.Lock()
			sums[st.sid] = sum
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("client streams failed")
	}
	if sums["alpha"].Races == 0 {
		t.Fatalf("fig3 session found no races; stage.report cannot be exercised: %+v", sums["alpha"])
	}

	h := d.httpHandler()

	// /sessions: one row per session, each with its own event count.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/sessions", nil))
	if rec.Code != 200 {
		t.Fatalf("/sessions: HTTP %d", rec.Code)
	}
	var rows []sessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil {
		t.Fatalf("/sessions: %v\n%s", err, rec.Body.String())
	}
	byID := map[string]sessionInfo{}
	for _, r := range rows {
		byID[r.Session] = r
	}
	if len(byID) != 2 {
		t.Fatalf("/sessions: %d distinct sessions, want 2:\n%s", len(byID), rec.Body.String())
	}
	for sid, tr := range map[string]*trace.Trace{"alpha": trA, "beta": trB} {
		row, ok := byID[sid]
		if !ok {
			t.Fatalf("/sessions: no row for %q", sid)
		}
		if row.State != "completed" {
			t.Errorf("%s: state %q, want completed", sid, row.State)
		}
		if row.Events != tr.Len() {
			t.Errorf("%s: %d events in /sessions, want %d (its own trace only)", sid, row.Events, tr.Len())
		}
		if row.Races != uint64(sums[sid].Races) {
			t.Errorf("%s: %d races in /sessions, summary says %d", sid, row.Races, sums[sid].Races)
		}
		if row.LastSeq != sums[sid].Seq {
			t.Errorf("%s: last_seq %d, summary seq %d", sid, row.LastSeq, sums[sid].Seq)
		}
	}

	// All six pipeline stages must have populated their latency histograms
	// for the racy session (stage.report only fires when records are written).
	stages := []string{obs.StageDecode, obs.StageSkeleton, obs.StageStamp,
		obs.StageDispatch, obs.StageDetect, obs.StageReport}
	for _, st := range stages {
		if byID["alpha"].Stages[st].Count == 0 {
			t.Errorf("alpha: stage %q has no samples: %+v", st, byID["alpha"].Stages)
		}
	}
	for _, st := range stages[:5] {
		if byID["beta"].Stages[st].Count == 0 {
			t.Errorf("beta: stage %q has no samples: %+v", st, byID["beta"].Stages)
		}
	}

	// Per-session metrics filter: known scope is served, unknown is a 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?session=alpha", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "rd2d.events") {
		t.Fatalf("/metrics?session=alpha: HTTP %d\n%s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?session=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("/metrics?session=nope: HTTP %d, want 404", rec.Code)
	}

	// Prometheus exposition: parse strictly, then check that for every
	// additive series carrying a session label, the per-session samples sum
	// to the label-free rolled-up global sample.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prom", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics?format=prom: HTTP %d", rec.Code)
	}
	samples, err := obs.ParsePrometheus(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("prom scrape does not parse: %v", err)
	}
	perSession := map[string]float64{}
	global := map[string]float64{}
	for _, s := range samples {
		if _, isBucket := s.Labels["le"]; isBucket || strings.HasSuffix(s.Name, "_peak") {
			continue // bucket and high-watermark series are not plain sums
		}
		if _, scoped := s.Labels["session"]; scoped {
			perSession[s.Name] += s.Value
		} else {
			global[s.Name] = s.Value
		}
	}
	if len(perSession) == 0 {
		t.Fatalf("prom scrape has no session-labelled series:\n%s", rec.Body.String())
	}
	for name, sum := range perSession {
		got, ok := global[name]
		if !ok {
			t.Errorf("prom: per-session series %q has no rolled-up global series", name)
			continue
		}
		if got != sum {
			t.Errorf("prom: %s global %v != sum of per-session series %v", name, got, sum)
		}
	}

	// The shared JSONL report carries both sessions' records with dense
	// per-session seqs even when their writes interleave.
	raceLines(t, &report)

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
