package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/wire"
)

// racyTrace returns a generated dictionary workload with at least one race
// under the dict spec, plus the offline (in-memory, serial) race count it
// must match when streamed.
func racyTrace(t *testing.T) (*trace.Trace, int) {
	t.Helper()
	rep, err := specs.Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed < 50; seed++ {
		cfg := trace.GenConfig{
			Threads: 4, Objects: 3, Keys: 4, Vals: 3, Locks: 2,
			OpsMin: 8, OpsMax: 16, PSize: 15, PGet: 35, PLocked: 30, PRemove: 25,
		}
		tr := trace.Generate(rand.New(rand.NewSource(seed)), cfg)
		det := core.New(core.Config{})
		for _, e := range tr.Events {
			if e.Kind == trace.ActionEvent {
				det.Register(e.Act.Obj, rep)
			}
		}
		if err := det.RunTrace(tr); err != nil {
			t.Fatal(err)
		}
		if n := det.Stats().Races; n > 0 {
			return tr, n
		}
	}
	t.Fatal("no seed under 50 produced a racy trace")
	return nil, 0
}

func testDaemon(t *testing.T, report *bytes.Buffer) (*daemon, chan error) {
	return testDaemonCfg(t, report, nil)
}

// testDaemonCfg is testDaemon with a config mutator hook (fault-injection
// and resilience tests arm injectors / resync / TTLs through it).
func testDaemonCfg(t *testing.T, report *bytes.Buffer, mut func(*daemonConfig)) (*daemon, chan error) {
	t.Helper()
	rep, err := specs.Rep("dict")
	if err != nil {
		t.Fatal(err)
	}
	cfg := daemonConfig{
		defaultRep:  rep,
		defaultSpec: "dict",
		engine:      core.EngineBounded,
		shards:      2,
		maxRaces:    100,
		queueLen:    64,
		idleTimeout: 5 * time.Second,
		compactOps:  32,
	}
	if report != nil {
		cfg.reporter = core.NewReportWriter(report)
	}
	if mut != nil {
		mut(&cfg)
	}
	d, err := newDaemon("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.Serve() }()
	return d, done
}

// TestDaemonEndToEnd streams a trace through a live daemon and checks the
// session summary against offline in-memory detection.
func TestDaemonEndToEnd(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	var report bytes.Buffer
	d, done := testDaemon(t, &report)

	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err := cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Error != "" {
		t.Fatalf("session error: %s", sum.Error)
	}
	if !sum.Clean {
		t.Fatal("summary not clean despite end-of-stream frame")
	}
	if sum.Events != tr.Len() {
		t.Fatalf("summary events = %d, want %d", sum.Events, tr.Len())
	}
	if sum.Races != wantRaces {
		t.Fatalf("streamed detection found %d races, offline found %d", sum.Races, wantRaces)
	}

	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if n := d.cfg.reporter.Count(); n != wantRaces {
		t.Fatalf("JSONL report has %d records, want %d", n, wantRaces)
	}
	if got := d.totalRaces.Load(); got != int64(wantRaces) {
		t.Fatalf("daemon total races = %d, want %d", got, wantRaces)
	}
}

// TestDaemonConcurrentSessions runs several clients at once; sessions are
// independent, so every summary must match the offline count.
func TestDaemonConcurrentSessions(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	d, done := testDaemon(t, nil)

	const clients = 4
	errs := make(chan error, clients)
	sums := make(chan wire.Summary, clients)
	for i := 0; i < clients; i++ {
		go func() {
			cl, err := wire.Dial(d.Addr(), 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if err := cl.SendSource(tr.Source()); err != nil {
				errs <- err
				return
			}
			sum, err := cl.Close(10 * time.Second)
			if err != nil {
				errs <- err
				return
			}
			sums <- sum
		}()
	}
	for i := 0; i < clients; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case sum := <-sums:
			if sum.Error != "" || sum.Races != wantRaces || sum.Events != tr.Len() {
				t.Fatalf("session summary %+v, want %d races over %d events", sum, wantRaces, tr.Len())
			}
		}
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.totalRaces.Load(); got != int64(clients*wantRaces) {
		t.Fatalf("daemon total races = %d, want %d", got, clients*wantRaces)
	}
}

// TestDaemonDrainMidStream starts a stream, never finishes it, and calls
// Shutdown while the connection is open. The daemon must cut the read,
// analyze everything already flushed, write a complete final report, and
// still acknowledge the session with a summary marked unclean.
func TestDaemonDrainMidStream(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	var report bytes.Buffer
	d, done := testDaemon(t, &report)

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := wire.NewEncoder(conn)
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the frames but send no end-of-stream; hold the socket open so
	// the daemon's reader is blocked mid-stream.
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	// Let the daemon ingest what was flushed, then drain.
	time.Sleep(500 * time.Millisecond)
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no summary after drain: %v", err)
	}
	var sum wire.Summary
	if err := json.Unmarshal(line, &sum); err != nil {
		t.Fatalf("bad summary %q: %v", line, err)
	}
	if sum.Clean {
		t.Fatal("drained session reported clean")
	}
	if sum.Error != "" {
		t.Fatalf("session error: %s", sum.Error)
	}
	if sum.Events != tr.Len() {
		t.Fatalf("drained session analyzed %d of %d flushed events", sum.Events, tr.Len())
	}
	if sum.Races != wantRaces {
		t.Fatalf("drained session found %d races, offline found %d", sum.Races, wantRaces)
	}
	if n := d.cfg.reporter.Count(); n != wantRaces {
		t.Fatalf("final report has %d records, want %d", n, wantRaces)
	}
}

// TestDaemonClientGoneMidFrame severs the connection in the middle of an
// events frame (inside the final frame's payload/CRC). The daemon must keep
// serving, analyze every fully delivered frame, and emit a non-clean summary
// with an explicit error for the cut session.
func TestDaemonClientGoneMidFrame(t *testing.T) {
	tr, _ := racyTrace(t)
	d, done := testDaemon(t, nil)

	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.FrameSize = 128 // several frames, so some events land before the cut
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Drop the 8-byte end frame plus the tail of the last events frame: the
	// daemon sees a frame that starts but never finishes.
	if _, err := conn.Write(data[:len(data)-10]); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no summary after mid-frame cut: %v", err)
	}
	conn.Close()
	var sum wire.Summary
	if err := json.Unmarshal(line, &sum); err != nil {
		t.Fatalf("bad summary %q: %v", line, err)
	}
	if sum.Clean {
		t.Fatal("mid-frame cut reported clean")
	}
	if sum.Error == "" {
		t.Fatal("mid-frame cut carried no error")
	}
	if sum.Events == 0 || sum.Events >= tr.Len() {
		t.Fatalf("analyzed %d events, want partial (0 < n < %d)", sum.Events, tr.Len())
	}

	// The daemon is still healthy.
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	if sum, err = cl.Close(10 * time.Second); err != nil || sum.Error != "" {
		t.Fatalf("post-cut session failed: %v %q", err, sum.Error)
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.failed.Load(); got != 1 {
		t.Fatalf("failed sessions = %d, want 1", got)
	}
}

// TestDaemonClientGoneMidVarint severs the connection one byte into a frame
// length varint — the nastiest cut point, since the decoder is mid-way
// through a multi-byte integer. The daemon must report the truncation and
// keep serving.
func TestDaemonClientGoneMidVarint(t *testing.T) {
	tr, wantRaces := racyTrace(t)
	d, done := testDaemon(t, nil)

	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf) // default frame size: one big first frame
	for i := range tr.Events {
		if err := enc.WriteEvent(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Layout: 5-byte header, then sync(2) + kind(1) + length uvarint. A
	// payload >= 128 bytes makes the varint multi-byte; byte 8 is its first
	// byte and must have the continuation bit set for the cut to land
	// mid-varint.
	if len(data) < 9 || data[8]&0x80 == 0 {
		t.Fatalf("first frame payload too small for a multi-byte length varint")
	}

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(data[:9]); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no summary after mid-varint cut: %v", err)
	}
	conn.Close()
	var sum wire.Summary
	if err := json.Unmarshal(line, &sum); err != nil {
		t.Fatalf("bad summary %q: %v", line, err)
	}
	if sum.Clean || sum.Error == "" {
		t.Fatalf("mid-varint cut summary = %+v, want unclean with error", sum)
	}
	if sum.Events != 0 {
		t.Fatalf("analyzed %d events from a headerless cut, want 0", sum.Events)
	}

	// The daemon is still healthy.
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err = cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Races != wantRaces {
		t.Fatalf("post-cut session found %d races, want %d", sum.Races, wantRaces)
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDaemonRejectsGarbage: a client speaking the wrong protocol gets an
// error summary, and the daemon survives to serve the next session.
func TestDaemonRejectsGarbage(t *testing.T) {
	d, done := testDaemon(t, nil)

	conn, err := net.Dial("tcp", d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatalf("no summary: %v", err)
	}
	conn.Close()
	var sum wire.Summary
	if err := json.Unmarshal(line, &sum); err != nil {
		t.Fatalf("bad summary %q: %v", line, err)
	}
	if sum.Error == "" {
		t.Fatal("garbage stream accepted without error")
	}

	// The daemon is still healthy.
	tr, wantRaces := racyTrace(t)
	cl, err := wire.Dial(d.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SendSource(tr.Source()); err != nil {
		t.Fatal(err)
	}
	sum, err = cl.Close(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Races != wantRaces {
		t.Fatalf("post-garbage session found %d races, want %d", sum.Races, wantRaces)
	}
	d.Shutdown()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := d.failed.Load(); got != 1 {
		t.Fatalf("failed sessions = %d, want 1", got)
	}
}
