package main

// This file implements fault-tolerant detection sessions (DESIGN.md §9):
// a session is decoupled from its TCP connection. Plain streams still live
// and die with their connection, but a stream that opens with a hello
// frame (a client-chosen session id) becomes resumable — if its connection
// drops mid-stream the session is parked with its full detection state
// (happens-before engine, pipeline shards, interning table, chunk cursor)
// and a reconnecting client resumes it by replaying unacknowledged chunks,
// which the decoder deduplicates by sequence number. The analysis worker
// is supervised: a panic degrades the session to a partial-but-honest
// report instead of killing the daemon.

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/hb"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Session lifecycle metrics: the active-session gauge moves by exactly one
// per session regardless of how it ends (clean close, idle timeout, worker
// panic, TTL expiry — see obs.Gauge.Enter), and the counters classify ends.
var (
	obsActiveSessions = obs.GetGauge("rd2d.active_sessions")
	obsSessionPanics  = obs.GetCounter("rd2d.session_panics")
	obsResumes        = obs.GetCounter("rd2d.sessions_resumed")
	obsParks          = obs.GetCounter("rd2d.sessions_parked")
	obsExpired        = obs.GetCounter("rd2d.sessions_expired")
	obsDegraded       = obs.GetCounter("rd2d.sessions_degraded")
)

// sessObs bundles the per-session instruments, resolved from the session's
// scope so every write rolls up into the daemon-global series: ingest
// counters (frames, events, races, backpressure), the queue-depth gauge
// whose peak is the session's high-water backlog, and the two stage spans
// the session records itself (wire decode and report emit; the skeleton,
// stamp, dispatch, and detect spans come from the hb engine and pipeline
// instruments resolved against the same scope).
type sessObs struct {
	frames *obs.Counter
	events *obs.Counter
	races  *obs.Counter
	stalls *obs.Counter
	queue  *obs.Gauge
	decode *obs.Span
	report *obs.Span
}

func newSessObs(scope *obs.Registry) *sessObs {
	return &sessObs{
		frames: scope.Counter("rd2d.frames"),
		events: scope.Counter("rd2d.events"),
		races:  scope.Counter("rd2d.races"),
		stalls: scope.Counter("rd2d.backpressure_stalls"),
		queue:  scope.Gauge("rd2d.queue_events"),
		decode: scope.Span(obs.StageDecode),
		report: scope.Span(obs.StageReport),
	}
}

// session states (guarded by session.mu).
const (
	stateAttached  = iota // a connection's read loop is feeding the queue
	stateParked           // no connection; detection state held under TTL
	stateCompleted        // summary finalized (stored for re-delivery)
)

// DefaultResumeTTL is how long a parked session waits for its client.
const DefaultResumeTTL = 30 * time.Second

// session is one detection run: the bounded event queue between the
// connection read loop and the supervised analysis worker, plus the state
// needed to park and resume across connections.
type session struct {
	d      *daemon
	id     int64  // daemon-local ordinal (logging)
	sid    string // client session id; "" = bound to one connection
	name   string // scope id: sid, or "conn-<id>" for plain sessions
	tenant string // quota/scheduling tenant (fleet.DefaultTenant when unset)

	// Fleet-mode execution (nil with -fleet off): the run-queue entry on
	// the shared scheduler and its serial runner. admit releases the
	// session's admission reservation; finalize calls it (idempotent).
	entry  *fleet.Entry
	runner *fleetRunner
	admit  func()

	// Durable-session state (nil without -statedir or for plain streams):
	// the WAL + snapshot machinery and, on a rehydrated session, the
	// checkpointed state the worker imports before processing.
	dur     *durSession
	restore *sessionRestore

	scope *obs.Registry // per-session metric scope (rolls up to the root)
	ob    *sessObs
	sr    *core.SessionReporter // stamps session+seq on JSONL records (nil without -report)

	queue chan trace.Event
	done  chan struct{} // worker exited (detection results final)
	final chan struct{} // summary assembled (read s.summary after this)

	// Worker-owned detection state; touched outside the worker only after
	// <-done (the channel close is the happens-before edge).
	en          *hb.Engine
	p           *pipeline.Pipeline
	registered  map[trace.ObjID]bool
	wrapRep     func(ap.Rep) ap.Rep // fault-injection hook (nil normally)
	events      int
	races       int
	shardPanics int
	degraded    bool // pipeline degraded or worker panicked
	panicked    bool
	procErr     error
	lastEv      string // most recent event, for panic reports

	// Reader-published stream facts (set before the queue closes).
	clean   atomic.Bool
	readErr atomic.Value // string

	mu      sync.Mutex
	state   int
	conn    pokeable        // current connection (attached), for liveness pokes
	dec     *wire.Decoder   // decoder holding the stream's cross-conn state
	th      *fleet.Throttle // current connection's ingest throttle
	ttl     *time.Timer
	resumes int

	finishOnce   sync.Once
	summary      wire.Summary // immutable once final is closed
	releaseGauge func()
}

// pokeable is the slice of net.Conn the session needs from its connection.
type pokeable interface{ SetReadDeadline(time.Time) error }

// newSession creates a session and starts its supervised worker. Every
// session gets its own metric scope ("session" = its id) under the daemon's
// registry root: the engine, pipeline shards, decoder, and the session's
// own ingest instruments all record into it, and every write rolls up into
// the global series, so /sessions and /metrics?session=ID attribute the
// fleet numbers per tenant at no extra bookkeeping.
func (d *daemon) newSession(sid, tenant string, restore *sessionRestore) *session {
	id := d.sessionSeq.Add(1)
	name := sid
	if name == "" {
		name = fmt.Sprintf("conn-%d", id)
	}
	if tenant == "" {
		tenant = fleet.DefaultTenant
	}
	scope := d.obsRoot().Scope("session", name)
	s := &session{
		d:          d,
		id:         id,
		sid:        sid,
		name:       name,
		tenant:     tenant,
		restore:    restore,
		scope:      scope,
		ob:         newSessObs(scope),
		queue:      make(chan trace.Event, d.cfg.queueLen),
		done:       make(chan struct{}),
		final:      make(chan struct{}),
		registered: map[trace.ObjID]bool{},
		en:         hb.NewObs(scope),
	}
	if restore != nil {
		s.dur = restore.dur
	} else if d.cfg.stateDir != "" && sid != "" {
		ds, err := d.openDurSession(sid, tenant)
		if err != nil {
			// Durability is best-effort infrastructure, detection is the
			// job: run the session ephemeral and say so loudly.
			d.cfg.logger.Printf("session %q: durable state unavailable, running ephemeral: %v", sid, err)
		} else {
			s.dur = ds
		}
	}
	ccfg := core.Config{Engine: d.cfg.engine, MaxRaces: d.cfg.maxRaces, Obs: scope}
	if d.cfg.reporter != nil {
		s.sr = d.cfg.reporter.Session(name)
		if restore != nil {
			// Replayed events regenerate already-durable JSONL records;
			// the suppression window swallows them, keeping numbering
			// contiguous across the restart.
			s.sr.Restore(restore.meta.ReporterSeq, restore.durableSeq)
		}
		ccfg.OnRace = func(r core.Race) {
			_, spec := d.repFor(r.Obj)
			start := s.ob.report.Start()
			s.sr.Write(r, spec)
			s.ob.report.End(start, 1)
		}
	}
	if d.cfg.injectRepPanic > 0 {
		s.wrapRep = faultinject.WrapAllReps(d.cfg.injectRepPanic)
	}
	s.releaseGauge = obsActiveSessions.Enter()
	d.track(s)
	if d.cfg.fleet {
		// Fleet mode: no private goroutine, no per-session shards. The
		// session runs as quanta on the shared worker pool.
		s.startFleet(ccfg)
	} else {
		s.p = pipeline.New(pipeline.Config{Shards: d.cfg.shards, Core: ccfg, Obs: scope})
		go s.work()
	}
	return s
}

// logf logs one line for this session through the daemon logger.
func (s *session) logf(format string, args ...any) {
	who := fmt.Sprintf("session %d", s.id)
	if s.sid != "" {
		who = fmt.Sprintf("session %d (id %q)", s.id, s.sid)
	}
	s.d.cfg.logger.Printf("%s: %s", who, fmt.Sprintf(format, args...))
}

// work is the supervised analysis worker: incremental happens-before
// stamping into the sharded pipeline, with lazy registration and periodic
// compaction. A panic is recovered — logged with the offending event and
// stack, counted, and degraded to a partial result — and the worker keeps
// draining the queue so the connection read loop can never block forever
// on a dead session.
func (s *session) work() {
	defer close(s.done)
	defer func() {
		if r := recover(); r != nil {
			s.panicked = true
			s.degraded = true
			obsSessionPanics.Inc()
			s.logf("recovered worker panic at event %s: %v\n%s", s.lastEv, r, debug.Stack())
			for range s.queue {
			} // drain: the reader must never block on a dead worker
			s.collect()
		}
	}()
	if s.d.cfg.stampWorkers >= 2 {
		s.workChunked()
	} else {
		s.workSerial()
	}
	s.collect()
}

// workSerial is the legacy per-event worker loop: incremental serial
// stamping, immediate dispatch. Per-event stamping time is attributed to
// the same skeleton/stamp stage spans as the two-pass engine, split by
// event kind: sync events walk the engine state (the skeleton work), body
// events reduce to stamping the segment snapshot.
func (s *session) workSerial() {
	s.applyRestore()
	skel := s.scope.Span(obs.StageSkeleton)
	stamp := s.scope.Span(obs.StageStamp)
	sinceCompact := 0
	for e := range s.queue {
		// Before the count advances, the worker sits exactly at the frame
		// boundary a checkpoint needs (events processed == boundary cum).
		s.maybeCheckpoint()
		s.events++
		sinceCompact++
		if s.procErr != nil {
			continue // drain
		}
		s.lastEv = e.String()
		if n := s.d.cfg.injectWorkerPanic; n > 0 && s.events == n {
			panic(fmt.Sprintf("faultinject: injected worker panic at event %d", n))
		}
		sp := skel
		if hb.IsBodyEvent(e.Kind) {
			sp = stamp
		}
		start := sp.Start()
		_, err := s.en.Process(&e)
		sp.End(start, 1)
		if err != nil {
			s.procErr = fmt.Errorf("event %d (%s): %w", e.Seq, e.String(), err)
			continue
		}
		s.dispatch(&e, &sinceCompact)
	}
}

// workChunked is the two-pass variant of the worker (-stampworkers >= 2):
// it drains the queue in chunks — one blocking receive, then whatever else
// is already buffered — stamps each chunk with the parallel two-pass
// engine, and runs the per-event dispatch loop (lazy registration, fault
// injection, pipeline feed, compaction) over the stamped chunk. Verdicts
// and error positions match the serial worker exactly; an idle trickle
// degrades to chunks of one event, the same work the serial loop does.
func (s *session) workChunked() {
	ps := hb.NewParallelStamperObs(s.d.cfg.stampWorkers, s.scope)
	s.en = ps.Engine() // compaction thresholds (MeetLive) come from here
	s.applyRestore()
	max := s.d.cfg.queueLen
	if max < 1 {
		max = 1
	}
	chunk := make([]trace.Event, 0, max)
	sinceCompact := 0
	for {
		e, ok := <-s.queue
		if !ok {
			return
		}
		// The blocking receive is a frame-boundary opportunity: the
		// received event is not processed yet, so the worker still sits at
		// the boundary the decoder last published.
		s.maybeCheckpoint()
		// When a checkpoint will be due at the next published boundary, cap
		// the chunk there: the engine must not stamp past a boundary the
		// worker intends to snapshot at.
		limit := max
		if ds := s.dur; ds != nil {
			if nb, ok := ds.ckptDueAt(s.events); ok {
				if room := nb - s.events; room < limit {
					limit = room
				}
			}
		}
		chunk = append(chunk[:0], e)
	drain:
		for len(chunk) < limit {
			select {
			case e, ok := <-s.queue:
				if !ok {
					s.runChunk(ps, chunk, &sinceCompact)
					return
				}
				chunk = append(chunk, e)
			default:
				break drain
			}
		}
		s.runChunk(ps, chunk, &sinceCompact)
		s.maybeCheckpoint()
	}
}

// runChunk stamps one drained chunk and dispatches its events in order.
// On a stamping error the valid prefix is still dispatched (the serial
// loop's stop-at-first-error behavior) and the remainder only counted.
func (s *session) runChunk(ps *hb.ParallelStamper, chunk []trace.Event, sinceCompact *int) {
	if s.procErr != nil {
		s.events += len(chunk)
		*sinceCompact += len(chunk)
		return
	}
	n, serr := ps.StampChunk(chunk)
	for i := 0; i < n; i++ {
		e := &chunk[i]
		s.events++
		*sinceCompact++
		s.lastEv = e.String()
		if k := s.d.cfg.injectWorkerPanic; k > 0 && s.events == k {
			panic(fmt.Sprintf("faultinject: injected worker panic at event %d", k))
		}
		s.dispatch(e, sinceCompact)
	}
	if serr != nil {
		bad := &chunk[n]
		s.lastEv = bad.String()
		s.events += len(chunk) - n
		*sinceCompact += len(chunk) - n
		s.procErr = fmt.Errorf("event %d (%s): %w", bad.Seq, bad.String(), serr)
	}
}

// dispatch feeds one stamped event to the pipeline: lazy registration
// ahead of the object's first action, then the event itself, then the
// post-join compaction check.
func (s *session) dispatch(e *trace.Event, sinceCompact *int) {
	if e.Kind == trace.ActionEvent && !s.registered[e.Act.Obj] {
		rep, _ := s.d.repFor(e.Act.Obj)
		if s.wrapRep != nil {
			rep = s.wrapRep(rep)
		}
		s.p.Register(e.Act.Obj, rep)
		s.registered[e.Act.Obj] = true
	}
	s.p.Process(e)
	if e.Kind == trace.JoinEvent && s.d.cfg.compactOps > 0 && *sinceCompact >= s.d.cfg.compactOps {
		s.p.Compact(s.en.MeetLive())
		*sinceCompact = 0
	}
}

// collect closes the pipeline and harvests its results, under its own
// panic guard: even a detector that dies during the final merge yields
// whatever it reported before dying (an honestly degraded result) rather
// than losing the session.
func (s *session) collect() {
	defer func() {
		if r := recover(); r != nil {
			s.panicked = true
			s.degraded = true
			obsSessionPanics.Inc()
			s.logf("recovered panic collecting results: %v\n%s", r, debug.Stack())
		}
	}()
	if err := s.p.Close(); err != nil && s.procErr == nil {
		s.procErr = err
	}
	st := s.p.Stats()
	s.races = st.Races
	s.shardPanics = s.p.ShardPanics()
	if s.p.Degraded() {
		s.degraded = true
	}
}

// setConn records the attached connection (for liveness pokes) under mu.
func (s *session) setConn(c pokeable) {
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
}

// setReadErr records the stream error that ends the session, if no
// detection error claims the summary first.
func (s *session) setReadErr(msg string) { s.readErr.Store(msg) }

// park detaches the session from its dead connection and starts the
// resume TTL. It returns false when the daemon is draining — the caller
// finalizes instead, so a drain never leaves work behind. The transition
// is atomic with the drain check (d.mu) so Shutdown's parked-session sweep
// can never miss it.
func (s *session) park() bool {
	s.d.mu.Lock()
	if s.d.draining {
		s.d.mu.Unlock()
		return false
	}
	s.mu.Lock()
	if s.state == stateCompleted {
		s.mu.Unlock()
		s.d.mu.Unlock()
		return false
	}
	s.state = stateParked
	s.conn = nil
	ttl := s.d.cfg.resumeTTL
	if ttl <= 0 {
		ttl = DefaultResumeTTL
	}
	s.ttl = time.AfterFunc(ttl, s.expire)
	s.mu.Unlock()
	s.d.mu.Unlock()
	obsParks.Inc()
	s.logf("parked (%d events so far, resume ttl %v)", s.d.snapshotEvents(s), ttl)
	return true
}

// expire fires when a parked session's TTL runs out with no reconnect.
func (s *session) expire() {
	s.mu.Lock()
	if s.state != stateParked {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	obsExpired.Inc()
	sum := s.finalize()
	s.logf("resume ttl expired: %d events, %d races, clean=%v degraded=%v",
		sum.Events, sum.Races, sum.Clean, sum.Degraded)
}

// snapshotEvents reads the decoder's event count for logging (the worker's
// count is not synchronized until done).
func (d *daemon) snapshotEvents(s *session) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dec != nil {
		return s.dec.Events()
	}
	return 0
}

// finalize ends the session exactly once: close the queue, wait for the
// worker, assemble the summary from detection results plus stream facts
// (resync skips, resumes), do the daemon bookkeeping, and release the
// active-session gauge. Every later (or concurrent) call waits and returns
// the same summary. Callers must guarantee no read loop is feeding the
// queue — clean end, parked, or drain-cut states all do.
func (s *session) finalize() wire.Summary {
	s.finishOnce.Do(func() {
		s.mu.Lock()
		s.state = stateCompleted
		if s.ttl != nil {
			s.ttl.Stop()
			s.ttl = nil
		}
		s.mu.Unlock()
		close(s.queue)
		if s.entry != nil {
			// Fleet mode: the closed queue is drained and collected by a
			// shared worker; wake the entry so an idle session notices.
			s.entry.Wake()
		}
		<-s.done
		if s.entry != nil {
			s.entry.Close()
		}
		if s.admit != nil {
			s.admit()
		}
		if s.dur != nil {
			// The session is final: its summary is in memory for
			// re-delivery and its durability obligation is over.
			s.dur.destroy()
		}

		s.mu.Lock()
		sum := wire.Summary{
			Events:      s.events,
			Races:       s.races,
			Clean:       s.clean.Load(),
			Resumes:     s.resumes,
			SessionID:   s.sid,
			ShardPanics: s.shardPanics,
		}
		if s.panicked {
			sum.ShardPanics++ // the worker itself counts as a failed unit
		}
		if s.dec != nil {
			sum.SkippedFrames = s.dec.SkippedFrames()
			sum.SkippedBytes = s.dec.SkippedBytes()
		}
		sum.Degraded = s.degraded || sum.SkippedFrames > 0 || sum.SkippedBytes > 0
		if s.procErr != nil {
			sum.Error = s.procErr.Error()
		} else if m, ok := s.readErr.Load().(string); ok && m != "" {
			sum.Error = m
		}
		if s.sr != nil {
			sum.Seq = s.sr.Seq()
		}
		s.summary = sum
		s.mu.Unlock()

		obsSessions.Inc()
		s.ob.queue.Set(0) // queue drained; clear its contribution to the global sum
		s.ob.events.Add(uint64(sum.Events))
		s.ob.races.Add(uint64(sum.Races))
		s.d.totalEvents.Add(int64(sum.Events))
		s.d.totalRaces.Add(int64(sum.Races))
		if sum.Error != "" {
			s.d.failed.Add(1)
		}
		if sum.Degraded {
			obsDegraded.Inc()
			s.d.degraded.Add(1)
			// Mark the shared JSONL report so its race records for this
			// session are self-describingly incomplete.
			if s.d.cfg.reporter != nil {
				s.d.cfg.reporter.WriteNote(map[string]any{
					"note":           "degraded",
					"session":        s.name,
					"seq":            sum.Seq,
					"session_id":     s.sid,
					"events":         sum.Events,
					"races":          sum.Races,
					"skipped_frames": sum.SkippedFrames,
					"skipped_bytes":  sum.SkippedBytes,
					"shard_panics":   sum.ShardPanics,
				})
			}
		}
		s.releaseGauge()
		// Keep the completed session visible (summary re-delivery for
		// resumable streams, a terminal /sessions row for operators), then
		// forget it and detach its metric scope. Writes from stragglers
		// keep rolling up into the global series after the drop.
		linger := s.d.cfg.resumeTTL
		if linger <= 0 {
			linger = DefaultResumeTTL
		}
		time.AfterFunc(linger, func() {
			if s.sid != "" {
				s.d.dropSession(s.sid, s)
			}
			s.d.untrack(s)
		})
		close(s.final)
	})
	<-s.final
	return s.summary
}

// waitSummary blocks until the session is finalized and returns its
// summary (the re-delivery path for completed sessions).
func (s *session) waitSummary() wire.Summary {
	<-s.final
	return s.summary
}

// isCompleted reports whether the session has been finalized.
func (s *session) isCompleted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateCompleted
}
