// Command obscheck validates observability invariants for CI. It has three
// modes:
//
// Default: validate a metrics snapshot against the obs JSON schema. It
// reads one snapshot (as served by rd2's -http /metrics endpoint or
// emitted by -stats-interval with -stats-json) from stdin or from a file
// argument, and exits 0 iff the snapshot is well-formed: all required keys
// present, gauge peaks >= values, histogram bucket sums consistent, and
// quantiles monotone. ci.sh -obs uses it to gate the HTTP smoke test.
//
//	rd2 -trace run.trace -http :6060 -serve &
//	curl -s localhost:6060/metrics | obscheck
//
// -allocs: assert the disabled-metrics fast path of scoped registries and
// stage spans allocates exactly zero bytes per operation (the contract that
// keeps always-on instrumentation free in production builds). Runs
// in-process with testing.AllocsPerRun; no input.
//
// -prom: validate Prometheus exposition text (as served by
// /metrics?format=prom) from stdin or a file: strict 0.0.4 parse, at least
// one sample, and every per-scope labelled series must have a label-free
// rolled-up parent series.
//
//	curl -s 'localhost:6060/metrics?format=prom' | obscheck -prom
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	allocs := fs.Bool("allocs", false, "assert the disabled path of scoped registries and spans is 0 allocs/op")
	prom := fs.Bool("prom", false, "validate Prometheus exposition text instead of a JSON snapshot")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *allocs {
		return checkAllocs()
	}

	var data []byte
	var err error
	switch fs.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "usage: obscheck [-allocs|-prom] [input-file] (default: stdin)")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		return 2
	}
	if *prom {
		return checkProm(data)
	}
	if err := obs.ValidateSnapshot(data); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: invalid snapshot: %v\n", err)
		return 1
	}
	fmt.Println("obscheck: snapshot ok")
	return 0
}

// checkAllocs pins the disabled-metrics fast path at zero allocations per
// operation for every instrument kind, through a session scope (so the
// rollup chain is linked) and for stage spans. This is the no-test-binary
// twin of internal/obs's TestObsDisabledZeroAlloc, runnable as a bare CI
// gate without compiling the test tree.
func checkAllocs() int {
	obs.SetEnabled(false)
	scope := obs.NewRegistry().Scope("session", "obscheck")
	c := scope.Counter("check.counter")
	g := scope.Gauge("check.gauge")
	h := scope.Histogram("check.histogram")
	tm := scope.Timer("check.timer_ns")
	sp := scope.Span(obs.StageDetect)
	// Fleet scheduler instruments (DESIGN.md §14): the per-event tenant
	// throttle fast path and the per-quantum schedule span are the two
	// calls on the fleet hot path, so they share the zero-alloc contract.
	freg := obs.NewRegistry()
	fsched := fleet.New(fleet.Config{Obs: freg})
	fth := fsched.Throttle("obscheck")
	fquanta := freg.Counter("fleet.quanta")
	frunnable := freg.Gauge("fleet.runnable")
	fsp := freg.Span(obs.StageSchedule)
	// Durable-session checkpoint instruments (DESIGN.md §15): the WAL
	// append counter sits on rd2d's per-frame ingest path, so the whole
	// rd2d.ckpt.* family shares the zero-alloc contract when metrics are off.
	dreg := obs.NewRegistry()
	dwal := dreg.Counter("rd2d.ckpt.wal_appends")
	dbytes := dreg.Counter("rd2d.ckpt.bytes")
	dns := dreg.Counter("rd2d.ckpt.ns")
	fail := 0
	for _, op := range []struct {
		name string
		fn   func()
	}{
		{"counter.Inc", func() { c.Inc() }},
		{"counter.Add", func() { c.Add(3) }},
		{"gauge.Add", func() { g.Add(1) }},
		{"gauge.Set", func() { g.Set(2) }},
		{"histogram.Observe", func() { h.Observe(500) }},
		{"timer.ObserveSince", func() { tm.ObserveSince(tm.Start()) }},
		{"span.Start/End", func() { sp.End(sp.Start(), 7) }},
		{"fleet.Throttle.Wait", func() { fth.Wait(1) }},
		{"fleet.quanta.Inc", func() { fquanta.Inc() }},
		{"fleet.runnable.Add", func() { frunnable.Add(1) }},
		{"fleet stage.schedule span", func() { fsp.End(fsp.Start(), 1) }},
		{"ckpt.wal_appends.Inc", func() { dwal.Inc() }},
		{"ckpt.bytes.Add", func() { dbytes.Add(4096) }},
		{"ckpt.ns.Add", func() { dns.Add(1000) }},
	} {
		if n := testing.AllocsPerRun(1000, op.fn); n != 0 {
			fmt.Fprintf(os.Stderr, "obscheck: disabled %s allocates %v per op, want 0\n", op.name, n)
			fail = 1
		}
	}
	if fail == 0 {
		fmt.Println("obscheck: disabled scoped path is 0 allocs/op")
	}
	return fail
}

// checkProm strictly parses Prometheus exposition text and checks the
// scope-rollup shape: any series carrying scope labels must coexist with a
// label-free global series of the same name.
func checkProm(data []byte) int {
	samples, err := obs.ParsePrometheus(strings.NewReader(string(data)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: invalid prometheus exposition: %v\n", err)
		return 1
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "obscheck: prometheus exposition has no samples")
		return 1
	}
	scopeLabels := func(s obs.PromSample) int {
		n := len(s.Labels)
		if _, bucket := s.Labels["le"]; bucket {
			n-- // the bucket label is structural, not a scope
		}
		return n
	}
	global := map[string]bool{}
	for _, s := range samples {
		if scopeLabels(s) == 0 {
			global[s.Name] = true
		}
	}
	for _, s := range samples {
		if scopeLabels(s) > 0 && !global[s.Name] {
			fmt.Fprintf(os.Stderr, "obscheck: scoped series %s has no rolled-up global series\n", s.Key())
			return 1
		}
	}
	fmt.Printf("obscheck: prometheus exposition ok (%d samples)\n", len(samples))
	return 0
}
