// Command obscheck validates a metrics snapshot against the obs JSON
// schema. It reads one snapshot (as served by rd2's -http /metrics endpoint
// or emitted by -stats-interval with -stats-json) from stdin or from a file
// argument, and exits 0 iff the snapshot is well-formed: all required keys
// present, gauge peaks >= values, histogram bucket sums consistent, and
// quantiles monotone. ci.sh -obs uses it to gate the HTTP smoke test.
//
//	rd2 -trace run.trace -http :6060 -serve &
//	curl -s localhost:6060/metrics | obscheck
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	var data []byte
	var err error
	switch len(args) {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(args[0])
	default:
		fmt.Fprintln(os.Stderr, "usage: obscheck [snapshot.json] (default: stdin)")
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: %v\n", err)
		return 2
	}
	if err := obs.ValidateSnapshot(data); err != nil {
		fmt.Fprintf(os.Stderr, "obscheck: invalid snapshot: %v\n", err)
		return 1
	}
	fmt.Println("obscheck: snapshot ok")
	return 0
}
