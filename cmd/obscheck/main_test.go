package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func writeFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidSnapshotExitsZero(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	reg.Counter("x.events").Add(7)
	reg.Gauge("x.depth").Add(3)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{writeFile(t, "snap.json", data)}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestInvalidSnapshotExitsOne(t *testing.T) {
	for name, body := range map[string]string{
		"not json":     "nope",
		"empty object": "{}",
		"wrong types":  `{"taken_unix_ns":"x","uptime_ns":0,"enabled":true,"counters":{},"gauges":{},"histograms":{},"timers":{}}`,
	} {
		if code := run([]string{writeFile(t, "bad.json", []byte(body))}); code != 1 {
			t.Errorf("%s: exit = %d, want 1", name, code)
		}
	}
}

func TestUsageErrorExitsTwo(t *testing.T) {
	if code := run([]string{"a", "b"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}
