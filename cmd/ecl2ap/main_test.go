package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuiltinSpec(t *testing.T) {
	for _, args := range [][]string{
		{"dict"},
		{"-raw", "dict"},
		{"-echo", "set"},
		{"counter"},
	} {
		if code := run(args); code != 0 {
			t.Errorf("args %v: exit = %d", args, code)
		}
	}
}

func TestSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "acct.spec")
	src := `
object account
method deposit(a) / (b)
commute deposit(a1)/(b1), deposit(a2)/(b2) when a1 == 0 && a2 == 0
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{path}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},         // missing arg
		{"a", "b"}, // too many args
		{"nope"},   // neither builtin nor file
		{"-bogus"}, // flag error
	}
	for _, args := range cases {
		if code := run(args); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestBadSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.spec")
	if err := os.WriteFile(path, []byte("object x\nmethod m(a)\ncommute m(v), m(w) when v == w"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{path}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
