// Command ecl2ap is the Section 6.2 translator as a standalone tool: it
// compiles an ECL commutativity specification into its access point
// representation and dumps the point classes and conflict relation.
//
// Usage:
//
//	ecl2ap dict                # a built-in specification by name
//	ecl2ap path/to/my.spec     # a specification file
//	ecl2ap -raw dict           # without the appendix A.3 optimizations
//	ecl2ap -echo dict          # also echo the parsed specification
//
// For the paper's dictionary specification (Fig 6) the optimized output is
// the four-class representation of Fig 7.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ecl"
	"repro/internal/specs"
	"repro/internal/translate"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("ecl2ap", flag.ContinueOnError)
	raw := fs.Bool("raw", false, "skip the appendix A.3 optimizations (cleanup + congruence)")
	echo := fs.Bool("echo", false, "echo the parsed specification before the dump")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ecl2ap [-raw] [-echo] <builtin-name|spec-file>")
		fmt.Fprintf(os.Stderr, "built-in specifications: %v\n", specs.Names())
		return 2
	}
	name := fs.Arg(0)

	spec, err := loadSpec(name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecl2ap: %v\n", err)
		return 2
	}
	if *echo {
		fmt.Println(spec)
	}
	opts := translate.Options{Cleanup: true, Congruence: true}
	if *raw {
		opts = translate.Options{}
	}
	rep, err := translate.TranslateOpts(spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecl2ap: %v\n", err)
		return 2
	}
	fmt.Print(rep.Dump())
	return 0
}

func loadSpec(name string) (*ecl.Spec, error) {
	if s, err := specs.Spec(name); err == nil {
		return s, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a built-in spec (%v) nor readable: %v",
			name, specs.Names(), err)
	}
	return ecl.ParseSpec(string(src))
}
