package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSelectedExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"-fig4"},
		{"-races", "-seed", "3"},
	} {
		if code := run(args); code != 0 {
			t.Errorf("args %v: exit = %d", args, code)
		}
	}
}

func TestComplexitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("complexity sweep is slow")
	}
	if code := run([]string{"-complexity", "-scale", "1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestTable2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	if code := run([]string{"-table2", "-scale", "1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBadFlags(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestShardScale(t *testing.T) {
	if testing.Short() {
		t.Skip("shard scaling is slow")
	}
	if code := run([]string{"-shardscale", "-scale", "1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestTable2WithShards(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	if code := run([]string{"-table2", "-scale", "1", "-shards", "2"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if code := run([]string{"-fig4", "-cpuprofile", cpu, "-memprofile", mem}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, p := range []string{cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
	// An unwritable profile path is a usage error.
	if code := run([]string{"-fig4", "-cpuprofile", filepath.Join(dir, "no/such/dir.pprof")}); code != 2 {
		t.Error("unwritable cpuprofile must exit 2")
	}
}
