package main

import "testing"

func TestSelectedExperiments(t *testing.T) {
	for _, args := range [][]string{
		{"-fig4"},
		{"-races", "-seed", "3"},
	} {
		if code := run(args); code != 0 {
			t.Errorf("args %v: exit = %d", args, code)
		}
	}
}

func TestComplexitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("complexity sweep is slow")
	}
	if code := run([]string{"-complexity", "-scale", "1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestTable2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 is slow")
	}
	if code := run([]string{"-table2", "-scale", "1"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBadFlags(t *testing.T) {
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
