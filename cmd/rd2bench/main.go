// Command rd2bench regenerates the paper's evaluation artifacts:
//
//	rd2bench -table2       Table 2 — qps / seconds and race counts for
//	                       every benchmark under uninstrumented,
//	                       FASTTRACK and RD2 instrumentation
//	rd2bench -fig4         Fig 4 — conflict checks for a size() after n
//	                       concurrent puts: access points vs invocations
//	rd2bench -complexity   Section 5.4 — Θ(1) bounded engine vs Θ(|A|)
//	                       enumerating engine as the trace grows
//	rd2bench -races        Section 7 — rediscover the three harmful races
//	                       (freedPageSpace, chunks, samples-size hint)
//	rd2bench -shardscale   sharded pipeline throughput at 1, 2, 4, and
//	                       GOMAXPROCS shards vs the serial detector
//	rd2bench -stampscale   two-pass parallel stamping throughput at 1, 2,
//	                       4, and GOMAXPROCS workers vs the serial front end
//	rd2bench -replay f     replay a recorded trace file (text or .rdb
//	                       binary, auto-detected) through serial and
//	                       sharded detection (-stampworkers N stamps the
//	                       sharded pass with the parallel front end)
//
// With no selection flags, everything runs (except -shardscale, which is
// opt-in). -scale multiplies workload sizes (higher = more stable timings).
// -shards N > 1 adds a sharded-pipeline column to Table 2. -cpuprofile and
// -memprofile write pprof profiles of the selected experiments.
//
// Observability (see DESIGN.md §7): -http serves /metrics, /debug/vars and
// /debug/pprof while experiments run; -stats-interval emits periodic
// snapshots to stderr (-stats-json for JSON); -obs prints the unified
// per-detector stat tables after Table 2 plus a final metrics snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rd2bench", flag.ContinueOnError)
	table2 := fs.Bool("table2", false, "run the Table 2 benchmark suite")
	fig4 := fs.Bool("fig4", false, "run the Fig 4 check-count experiment")
	complexity := fs.Bool("complexity", false, "run the Section 5.4 scaling experiment")
	races := fs.Bool("races", false, "run the Section 7 race rediscovery")
	overhead := fs.Bool("overhead", false, "run the per-event analysis cost comparison")
	ablation := fs.Bool("ablation", false, "run the design-choice ablations")
	shardscale := fs.Bool("shardscale", false, "run the shard-scaling throughput experiment")
	stampscale := fs.Bool("stampscale", false, "run the stamp-worker scaling experiment (two-pass parallel front end)")
	replayPath := fs.String("replay", "", "replay a recorded trace file (text or .rdb RDB2 binary, auto-detected by magic header) through serial and sharded detection")
	replaySpec := fs.String("replay-spec", "dict", "built-in specification registered for every object during -replay")
	stampWorkers := fs.Int("stampworkers", 1, "happens-before stamping workers for -replay's sharded pass; >=2 runs the two-pass parallel front end")
	scale := fs.Int("scale", 2, "workload scale multiplier")
	seed := fs.Int64("seed", 42, "workload random seed")
	shards := fs.Int("shards", 0, "add a sharded-pipeline pass with N shards to Table 2 (0 = off)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (enables metrics)")
	statsInterval := fs.Duration("stats-interval", 0, "emit a metrics snapshot to stderr at this interval (enables metrics)")
	statsJSON := fs.Bool("stats-json", false, "emit -stats-interval snapshots as JSON instead of text")
	obsFlag := fs.Bool("obs", false, "print per-detector stat tables and a final metrics snapshot (enables metrics)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	all := !*table2 && !*fig4 && !*complexity && !*races && !*overhead && !*ablation &&
		!*shardscale && !*stampscale && *replayPath == ""

	if *httpAddr != "" || *statsInterval > 0 || *obsFlag {
		obs.SetEnabled(true)
	}
	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rd2bench: metrics on http://%s/metrics\n", srv.Addr())
	}
	if *statsInterval > 0 {
		em := obs.StartEmitter(os.Stderr, obs.Default, *statsInterval, *statsJSON)
		defer em.Stop()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			}
		}()
	}

	if *table2 || all {
		fmt.Println("== Table 2: performance and races ==")
		rows := harness.RunTable2(harness.Config{Scale: *scale, Seed: *seed, Shards: *shards})
		fmt.Print(harness.RenderTable2(rows))
		fmt.Println()
		if *obsFlag {
			fmt.Println("== Detector counters (unified stat surface) ==")
			fmt.Print(harness.RenderDetectorStats(rows))
			fmt.Println()
		}
	}
	if *replayPath != "" {
		fmt.Println("== Trace replay: serial vs sharded detection ==")
		if err := runReplay(*replayPath, *replaySpec, *shards, *stampWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Println()
	}
	if *shardscale {
		fmt.Println("== Shard scaling: sharded pipeline vs serial RD2 ==")
		counts := []int{1, 2, 4}
		if n := runtime.GOMAXPROCS(0); n > 4 {
			counts = append(counts, n)
		}
		rows := harness.RunShardScaling(counts, *scale, *seed)
		fmt.Print(harness.RenderShardScaling(rows))
		fmt.Println()
	}
	if *stampscale {
		fmt.Println("== Stamp-worker scaling: two-pass parallel front end ==")
		counts := []int{1, 2, 4}
		if n := runtime.GOMAXPROCS(0); n > 4 {
			counts = append(counts, n)
		}
		sh := *shards
		if sh <= 0 {
			sh = 4
		}
		rows, err := harness.RunStampScaling(counts, sh, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderStampScaling(rows))
		fmt.Println()
	}
	if *fig4 || all {
		fmt.Println("== Fig 4: conflict checks for size() after n resizing puts ==")
		rows, err := harness.RunFig4(8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderFig4(rows))
		fmt.Println()
	}
	if *complexity || all {
		fmt.Println("== Section 5.4: bounded vs enumerating engine scaling ==")
		sizes := []int{1000, 2000, 4000, 8000}
		if *scale > 4 {
			sizes = append(sizes, 16000)
		}
		rows, err := harness.RunComplexity(sizes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderComplexity(rows))
		fmt.Println()
	}
	if *overhead || all {
		fmt.Println("== Per-event analysis cost ==")
		rows, err := harness.RunOverhead(20000**scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderOverhead(rows))
		fmt.Println()
	}
	if *ablation || all {
		fmt.Println("== Design-choice ablations ==")
		rows, err := harness.RunAblations(500**scale, 8)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderAblations(rows))
		fmt.Println()
	}
	if *races || all {
		fmt.Println("== Section 7: harmful race rediscovery ==")
		reports, err := harness.RunRaceDiscovery(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2bench: %v\n", err)
			return 1
		}
		fmt.Print(harness.RenderRaceReports(reports))
	}
	if *obsFlag {
		fmt.Fprint(os.Stderr, obs.FormatSnapshot(obs.Default.Snapshot()))
	}
	return 0
}

// runReplay loads a recorded trace (format auto-detected: RDB2 binary or
// text) and runs it through the serial detector and the sharded pipeline,
// reporting wall-clock throughput and the (identical) race counts. With
// stampWorkers >= 2 the sharded pass stamps happens-before clocks with the
// two-pass parallel front end.
func runReplay(path, specName string, shards, stampWorkers int) error {
	rep, err := specs.Rep(specName)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := wire.ParseAny(f)
	if err != nil {
		return err
	}
	objs := map[trace.ObjID]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.ActionEvent {
			objs[e.Act.Obj] = true
		}
	}

	serial := core.New(core.Config{})
	for o := range objs {
		serial.Register(o, rep)
	}
	t0 := time.Now()
	if err := serial.RunTrace(tr); err != nil {
		return err
	}
	serialDur := time.Since(t0)

	if shards <= 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	p := pipeline.New(pipeline.Config{Shards: shards, StampWorkers: stampWorkers})
	for o := range objs {
		p.Register(o, rep)
	}
	t0 = time.Now()
	if err := p.RunTrace(tr); err != nil {
		return err
	}
	shardedDur := time.Since(t0)

	evs := float64(tr.Len())
	fmt.Printf("  %-22s %10d events  %8d objects\n", path, tr.Len(), len(objs))
	fmt.Printf("  serial:    %12v  %10.0f events/s  %d races\n",
		serialDur.Round(time.Microsecond), evs/serialDur.Seconds(), serial.Stats().Races)
	fmt.Printf("  %d shards: %12v  %10.0f events/s  %d races\n",
		shards, shardedDur.Round(time.Microsecond), evs/shardedDur.Seconds(), p.Stats().Races)
	return nil
}
