package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const racyTrace = `
t0 fork t1
t0 fork t2
t2 act o0.put("a.com", 1)/nil
t1 act o0.put("a.com", 2)/1
t0 join t1
t0 join t2
t0 act o0.size()/1
`

const cleanTrace = `
t0 fork t1
t1 act o0.put("a.com", 1)/nil
t0 join t1
t0 act o0.size()/1
`

func TestRacyTraceExitsOne(t *testing.T) {
	path := writeFile(t, "racy.trace", racyTrace)
	for _, extra := range [][]string{nil, {"-engine", "enumerating"}, {"-summary"}, {"-q"}} {
		args := append([]string{"-trace", path}, extra...)
		if code := run(args); code != 1 {
			t.Errorf("args %v: exit = %d, want 1", args, code)
		}
	}
}

func TestCleanTraceExitsZero(t *testing.T) {
	path := writeFile(t, "clean.trace", cleanTrace)
	if code := run([]string{"-trace", path}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestSpecFromFile(t *testing.T) {
	tracePath := writeFile(t, "t.trace", cleanTrace)
	specPath := writeFile(t, "d.spec", `
object dict
method put(k, v) / (p)
method size() / (r)
commute put(k1, v1)/(p1), put(k2, v2)/(p2) when k1 != k2
commute put(k1, v1)/(p1), size()/(r) when false
commute size()/(r1), size()/(r2) when true
`)
	if code := run([]string{"-trace", tracePath, "-spec", specPath}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestBindOverride(t *testing.T) {
	path := writeFile(t, "t.trace", cleanTrace)
	if code := run([]string{"-trace", path, "-bind", "0=dict"}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeFile(t, "t.trace", cleanTrace)
	cases := [][]string{
		{},                                     // missing -trace
		{"-trace", "/nonexistent/file"},        // unreadable trace
		{"-trace", path, "-engine", "warp"},    // bad engine
		{"-trace", path, "-spec", "nope"},      // unknown spec
		{"-trace", path, "-bind", "zero=dict"}, // bad object id
		{"-trace", path, "-bind", "0"},         // malformed bind
		{"-trace", path, "-bind", "0=nope"},    // unknown bound spec
		{"-bogus-flag"},                        // flag error
	}
	for _, args := range cases {
		if code := run(args); code != 2 {
			t.Errorf("args %v: exit = %d, want 2", args, code)
		}
	}
}

func TestBadTraceContent(t *testing.T) {
	path := writeFile(t, "bad.trace", "t0 frobnicate o0\n")
	if code := run([]string{"-trace", path}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestTraceWithUnknownMethod(t *testing.T) {
	path := writeFile(t, "bad.trace", "t0 act o0.frob(1)/2\n")
	if code := run([]string{"-trace", path}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestDeterminismFlag(t *testing.T) {
	racy := writeFile(t, "racy.trace", racyTrace)
	if code := run([]string{"-trace", racy, "-determinism", "30", "-q"}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	clean := writeFile(t, "clean.trace", cleanTrace)
	if code := run([]string{"-trace", clean, "-determinism", "30"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestValidateFlagCatchesMalformedTrace(t *testing.T) {
	bad := writeFile(t, "bad.trace", "t0 fork t1\nt0 fork t1\n")
	if code := run([]string{"-trace", bad}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	// Disabling validation defers the failure to the happens-before engine.
	if code := run([]string{"-trace", bad, "-validate=false"}); code != 2 {
		t.Fatalf("exit = %d, want 2 (hb engine rejects double fork)", code)
	}
}

func TestJSONOutput(t *testing.T) {
	racy := writeFile(t, "racy.trace", racyTrace)
	if code := run([]string{"-trace", racy, "-json"}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestShardsFlag(t *testing.T) {
	racy := writeFile(t, "racy.trace", racyTrace)
	clean := writeFile(t, "clean.trace", cleanTrace)
	for _, shards := range []string{"1", "4"} {
		if code := run([]string{"-trace", racy, "-shards", shards}); code != 1 {
			t.Errorf("-shards %s racy: exit = %d, want 1", shards, code)
		}
		if code := run([]string{"-trace", clean, "-shards", shards}); code != 0 {
			t.Errorf("-shards %s clean: exit = %d, want 0", shards, code)
		}
	}
	// The pipeline path composes with the other report modes and spec files.
	if code := run([]string{"-trace", racy, "-shards", "4", "-json"}); code != 1 {
		t.Errorf("-shards 4 -json: want exit 1")
	}
	if code := run([]string{"-trace", racy, "-shards", "4", "-summary"}); code != 1 {
		t.Errorf("-shards 4 -summary: want exit 1")
	}
	if code := run([]string{"-trace", racy, "-shards", "4", "-engine", "enumerating"}); code != 1 {
		t.Errorf("-shards 4 -engine enumerating: want exit 1")
	}
	// Errors (unregistered kinds, malformed events) still surface as exit 2.
	bad := writeFile(t, "bad.trace", "t0 act o0.frob(1)/2\n")
	if code := run([]string{"-trace", bad, "-shards", "4"}); code != 2 {
		t.Errorf("-shards 4 bad trace: exit = %d, want 2", code)
	}
}
