package main

import (
	"encoding/json"
	"io"
	"net"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// busyDaemon is a minimal fake rd2d that rejects every session at admission:
// it writes a busy summary line, half-closes, and drains the client's bytes,
// mirroring the daemon's rejectBusy path. accepts counts attempts so tests
// can assert the retry loop honored -retries.
func busyDaemon(t *testing.T) (addr string, accepts *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepts = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			go func(conn net.Conn) {
				defer conn.Close()
				line, _ := json.Marshal(wire.Summary{Busy: true, Error: "fleet: busy: session table full"})
				conn.Write(append(line, '\n')) //nolint:errcheck
				if tc, ok := conn.(*net.TCPConn); ok {
					tc.CloseWrite() //nolint:errcheck
				}
				conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
				io.Copy(io.Discard, conn)                             //nolint:errcheck
			}(conn)
		}
	}()
	return ln.Addr().String(), accepts
}

func openTrace(t *testing.T, content string) *os.File {
	t.Helper()
	path := writeFile(t, "busy.trace", content)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestSendBusyExhaustsRetries(t *testing.T) {
	addr, accepts := busyDaemon(t)
	f := openTrace(t, cleanTrace)
	code := runSend(addr, time.Second, f, false, "", "", 1, 0)
	if code != exitBusy {
		t.Fatalf("exit = %d, want %d (busy)", code, exitBusy)
	}
	// -retries 1 bounds busy retries: the initial attempt plus one retry.
	if got := accepts.Load(); got != 2 {
		t.Fatalf("daemon saw %d attempts, want 2", got)
	}
}

func TestSendBusyResumableExhaustsRetries(t *testing.T) {
	addr, _ := busyDaemon(t)
	f := openTrace(t, cleanTrace)
	code := runSend(addr, time.Second, f, false, "sess-busy", "acme", 0, 0)
	if code != exitBusy {
		t.Fatalf("exit = %d, want %d (busy)", code, exitBusy)
	}
}
