// Command rd2 is the offline commutativity race detector: it replays a
// recorded trace against commutativity specifications and reports every
// commutativity race (Algorithm 1 of the paper).
//
// Usage:
//
//	rd2 -trace run.trace [-spec dict] [-bind 0=dict,1=set] [-engine bounded]
//
// The trace format is auto-detected by magic header: RDB2 binary traces
// (.rdb, see internal/wire) and the text format both work everywhere a
// trace is read. -send addr streams the trace to a running rd2d ingestion
// daemon instead of analyzing locally (with -validate=false the file is
// streamed in bounded memory). -resume (or an explicit -session id) opens a
// resumable session: if the connection is lost mid-stream, rd2 reconnects
// with exponential backoff and the daemon resumes the session from the last
// acknowledged chunk, without duplicating events.
//
// The text trace format of internal/trace:
//
//	t0 fork t1
//	t1 act o0.put("a.com", 1)/nil
//	t0 join t1
//	t0 act o0.size()/1
//
// -spec names the default specification for every object: either a built-in
// name (dict, set, counter, queue, register, multiset) or a path to an ECL
// specification file. -bind overrides the specification per object id.
//
// Observability (see DESIGN.md §7): -http serves /metrics, /debug/vars and
// /debug/pprof; -stats-interval emits periodic snapshots to stderr
// (-stats-json for JSON); -obs prints a final snapshot; -report streams
// structured race records as JSON Lines; -serve keeps the HTTP endpoint up
// after the analysis until SIGINT/SIGTERM (for scraping and smoke tests).
//
// The exit status is 1 when races were found, 2 on usage or input errors.
// -send distinguishes its failure modes: 3 when the initial dial fails,
// 4 when the connection is lost mid-stream (and, with -resume, could not be
// recovered), 5 when the stream was delivered but the summary read failed,
// 6 when the daemon rejected the session at admission (busy: session table
// full or tenant over quota) and the -retries backoff attempts ran out.
// -tenant stamps the stream's hello with a tenant id for the daemon's
// per-tenant quota accounting and fair scheduling (-fleet mode of rd2d).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/ecl"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/replay"
	"repro/internal/specs"
	"repro/internal/trace"
	"repro/internal/translate"
	"repro/internal/wire"
)

// detector is the surface shared by the serial core.Detector and the
// sharded pipeline.Pipeline; run picks one based on -shards.
type detector interface {
	Register(obj trace.ObjID, rep ap.Rep)
	RunTrace(tr *trace.Trace) error
	Races() []core.Race
	Stats() core.Stats
	DistinctObjects() int
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rd2", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "trace file to analyze (required)")
	specName := fs.String("spec", "dict", "default specification: built-in name or file path")
	bind := fs.String("bind", "", "per-object specs, e.g. 0=dict,3=set")
	engine := fs.String("engine", "bounded", "conflict engine: bounded or enumerating")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0),
		"detection shards; >1 runs the parallel pipeline, <=1 the serial detector")
	stampWorkers := fs.Int("stampworkers", 1,
		"happens-before stamping workers; >=2 runs the two-pass parallel stamping front end")
	maxRaces := fs.Int("max-races", 100, "maximum races to print")
	quiet := fs.Bool("q", false, "print only the summary line")
	grouped := fs.Bool("summary", false, "group redundant races by object and method pair")
	jsonOut := fs.Bool("json", false, "emit races as JSON (one object per line)")
	validate := fs.Bool("validate", true, "check trace well-formedness before analysis")
	determinism := fs.Int("determinism", 0,
		"additionally replay N random linearizations (Theorem 5.2 check; built-in specs only)")
	httpAddr := fs.String("http", "", "serve /metrics, /debug/vars and /debug/pprof on this address (enables metrics)")
	statsInterval := fs.Duration("stats-interval", 0, "emit a metrics snapshot to stderr at this interval (enables metrics)")
	statsJSON := fs.Bool("stats-json", false, "emit -stats-interval snapshots as JSON instead of text")
	obsFlag := fs.Bool("obs", false, "print a final metrics snapshot to stderr (enables metrics)")
	reportPath := fs.String("report", "", "stream structured race records (JSON Lines) to this file")
	serve := fs.Bool("serve", false, "with -http: keep serving after the analysis until SIGINT/SIGTERM")
	send := fs.String("send", "", "stream the trace to an rd2d daemon at this address instead of analyzing locally")
	sendWait := fs.Duration("send-wait", 5*time.Second, "with -send: how long to retry the initial connection")
	resume := fs.Bool("resume", false, "with -send: open a resumable session (reconnect and resume after mid-stream connection loss)")
	session := fs.String("session", "", "with -send: client-chosen session id (implies -resume; default: derived unique id)")
	retries := fs.Int("retries", wire.DefaultRetries, "with -resume: redial attempts per connection failure (also bounds busy-reject retries)")
	restartWindow := fs.Duration("restart-window", 15*time.Second,
		"with -resume: keep redialing a refused connection for this long (covers an rd2d crash/restart window; 0 disables)")
	tenant := fs.String("tenant", "", "with -send: tenant id carried in the stream hello (daemon-side quota accounting and fair scheduling)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "rd2: -trace is required")
		fs.Usage()
		return 2
	}
	if *serve && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "rd2: -serve requires -http")
		return 2
	}

	if *httpAddr != "" || *statsInterval > 0 || *obsFlag {
		obs.SetEnabled(true)
	}
	var srv *obs.Server
	if *httpAddr != "" {
		var err error
		srv, err = obs.Serve(*httpAddr, obs.Default)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rd2: metrics on http://%s/metrics\n", srv.Addr())
	}
	if *statsInterval > 0 {
		em := obs.StartEmitter(os.Stderr, obs.Default, *statsInterval, *statsJSON)
		defer em.Stop()
	}

	var eng core.Engine
	switch *engine {
	case "bounded":
		eng = core.EngineBounded
	case "enumerating":
		eng = core.EngineEnumerating
	default:
		fmt.Fprintf(os.Stderr, "rd2: unknown engine %q\n", *engine)
		return 2
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
		return 2
	}
	defer f.Close()

	if *send != "" {
		// Online mode: stream the trace to an rd2d ingestion daemon and
		// report its session summary. With -validate=false the file is
		// streamed straight off disk (bounded memory); validation needs
		// the whole trace in hand first.
		sid := *session
		if sid == "" && *resume {
			sid = fmt.Sprintf("rd2-%d-%d", os.Getpid(), time.Now().UnixNano())
		}
		return runSend(*send, *sendWait, f, *validate, sid, *tenant, *retries, *restartWindow)
	}

	// Auto-detect the trace format by magic header: RDB2 binary (.rdb) or
	// the line-oriented text format.
	tr, err := wire.ParseAny(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
		return 2
	}

	if *validate {
		if err := trace.Validate(tr); err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return 2
		}
	}

	defaultRep, err := loadRep(*specName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
		return 2
	}

	ccfg := core.Config{Engine: eng, MaxRaces: *maxRaces}

	// kinds maps each object to its responsible specification name; it is
	// fully populated before RunTrace, so the report writer's OnRace
	// callback (which runs on shard goroutines under -shards) only reads it.
	kinds := map[trace.ObjID]string{}
	var reporter *core.ReportWriter
	if *reportPath != "" {
		rf, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return 2
		}
		defer rf.Close()
		reporter = core.NewReportWriter(rf)
		ccfg.OnRace = func(r core.Race) {
			reporter.Write(r, kinds[r.Obj])
		}
	}

	var det detector
	runTrace := func(tr *trace.Trace) error { return det.RunTrace(tr) }
	if *shards > 1 {
		// The sharded pipeline: happens-before stamping (two-pass
		// parallel with -stampworkers >= 2), parallel per-object
		// detection, merged report in canonical order.
		det = pipeline.New(pipeline.Config{
			Shards: *shards, StampWorkers: *stampWorkers, Core: ccfg,
		})
	} else {
		cd := core.New(ccfg)
		det = cd
		if *stampWorkers >= 2 {
			w := *stampWorkers
			runTrace = func(tr *trace.Trace) error { return cd.RunTraceParallel(tr, w) }
		}
	}
	objs := map[trace.ObjID]bool{}
	for _, e := range tr.Events {
		if e.Kind == trace.ActionEvent {
			objs[e.Act.Obj] = true
		}
	}
	for o := range objs {
		det.Register(o, defaultRep)
		kinds[o] = *specName
	}
	if *bind != "" {
		for _, pair := range strings.Split(*bind, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				fmt.Fprintf(os.Stderr, "rd2: bad -bind entry %q\n", pair)
				return 2
			}
			id, err := strconv.Atoi(kv[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "rd2: bad object id %q\n", kv[0])
				return 2
			}
			rep, err := loadRep(kv[1])
			if err != nil {
				fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
				return 2
			}
			det.Register(trace.ObjID(id), rep)
			kinds[trace.ObjID(id)] = kv[1]
		}
	}

	if err := runTrace(tr); err != nil {
		fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
		return 2
	}

	// Canonical report order regardless of detection path: the pipeline
	// merge is already sorted, but the serial detector emits ties within one
	// second event in map-iteration order.
	races := append([]core.Race(nil), det.Races()...)
	core.SortRaces(races)
	switch {
	case *quiet:
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		for _, r := range races {
			if err := enc.Encode(raceJSON{
				Object:       int(r.Obj),
				First:        r.First.String(),
				FirstThread:  int(r.FirstThread),
				FirstPoint:   r.FirstPoint,
				Second:       r.Second.String(),
				SecondThread: int(r.SecondThread),
				SecondSeq:    r.SecondSeq,
				SecondPoint:  r.SecondPoint,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
				return 2
			}
		}
	case *grouped:
		fmt.Print(core.RenderSummary(core.Summarize(races)))
	default:
		for _, r := range races {
			fmt.Println(r)
		}
	}
	st := det.Stats()
	fmt.Printf("rd2: %d events, %d actions, %d checks, %d commutativity races on %d objects\n",
		tr.Len(), st.Actions, st.Checks, st.Races, det.DistinctObjects())
	if reporter != nil {
		if err := reporter.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "rd2: report: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "rd2: %d race records written to %s\n", reporter.Count(), *reportPath)
	}

	if *determinism > 0 {
		res, err := replay.Check(tr, kinds, replay.Config{Samples: *determinism})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2: determinism check: %v (only built-in specs have executable semantics)\n", err)
			return 2
		}
		if res.Deterministic {
			fmt.Printf("rd2: %d linearizations replayed: deterministic\n", res.Samples)
		} else {
			fmt.Printf("rd2: non-deterministic: %s\n", res.Witness)
		}
	}
	if *obsFlag {
		fmt.Fprint(os.Stderr, obs.FormatSnapshot(obs.Default.Snapshot()))
	}
	if *serve {
		fmt.Fprintln(os.Stderr, "rd2: analysis done, serving until SIGINT/SIGTERM")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
	if st.Races > 0 {
		return 1
	}
	return 0
}

// -send exit codes: the error taxonomy distinguishes where a streamed
// session failed, so scripts can tell "daemon unreachable" from "the
// network died mid-stream" from "the stream went but the summary did not
// come back" (documented in README).
const (
	exitRaces       = 1 // session completed; races found
	exitUsage       = 2 // usage, trace, or daemon-reported errors
	exitDial        = 3 // could not establish the initial connection
	exitSend        = 4 // connection lost mid-stream (and, with -resume, not recovered)
	exitSummaryRead = 5 // stream delivered, but the summary read failed
	exitBusy        = 6 // daemon rejected the session at admission; retries exhausted
)

// Busy-reject retry pacing: a rejected session is retried from the top of
// the trace (the daemon ingested nothing) with doubling backoff.
const (
	busyBackoff    = 200 * time.Millisecond
	busyMaxBackoff = 5 * time.Second
)

// sendClient is the surface shared by the plain and resumable clients.
type sendClient interface {
	SendSource(src trace.Source) error
	Close(timeout time.Duration) (wire.Summary, error)
	Abort() error
}

// runSend streams the trace file to an rd2d daemon and relays its summary.
// The initial connection is retried until wait elapses (so scripted runs
// can start daemon and sender together). With a session id the stream is
// resumable: a mid-stream connection loss is retried with exponential
// backoff and the session resumes from the last acknowledged chunk. A busy
// reject (the daemon's admission control shed the session before ingesting
// anything) is retried from the top of the trace with doubling backoff,
// up to retries attempts; exit code 6 when they run out. restartWindow
// extends mid-stream reconnects past the retry budget for its duration,
// so a daemon restart (connection refused while the new process rehydrates
// durable sessions) does not kill a resumable send.
func runSend(addr string, wait time.Duration, f *os.File, validate bool, sid, tenant string, retries int, restartWindow time.Duration) int {
	backoff := busyBackoff
	for attempt := 0; ; attempt++ {
		code, busy := sendOnce(addr, wait, f, validate, sid, tenant, retries, restartWindow)
		if !busy {
			return code
		}
		if attempt >= retries {
			fmt.Fprintf(os.Stderr, "rd2: daemon busy after %d attempts (raise -retries or shed load)\n", attempt+1)
			return exitBusy
		}
		fmt.Fprintf(os.Stderr, "rd2: daemon busy, retrying in %v\n", backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > busyMaxBackoff {
			backoff = busyMaxBackoff
		}
		// The daemon ingested nothing from a rejected session: replay the
		// whole trace file on the next attempt.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return exitUsage
		}
	}
}

// sendOnce performs one full send attempt. busy reports a daemon-side
// admission reject, which the caller may retry after backoff.
func sendOnce(addr string, wait time.Duration, f *os.File, validate bool, sid, tenant string, retries int, restartWindow time.Duration) (code int, busy bool) {
	var src trace.Source
	if validate {
		tr, err := wire.ParseAny(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return exitUsage, false
		}
		if err := trace.Validate(tr); err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return exitUsage, false
		}
		src = tr.Source()
	} else {
		var err error
		if src, err = wire.NewSource(f); err != nil {
			fmt.Fprintf(os.Stderr, "rd2: %v\n", err)
			return exitUsage, false
		}
	}

	var cl sendClient
	deadline := time.Now().Add(wait)
	for {
		var err error
		if sid != "" {
			var rc *wire.ResumableClient
			if rc, err = wire.DialSession(addr, sid, time.Second); err == nil {
				rc.Retries = retries
				rc.RetryWindow = restartWindow
				rc.OnResume = func(replayed int) {
					fmt.Fprintf(os.Stderr, "rd2: reconnected, replayed %d chunks\n", replayed)
				}
				if tenant != "" {
					if terr := rc.SetTenant(tenant); terr != nil {
						fmt.Fprintf(os.Stderr, "rd2: %v\n", terr)
						return exitUsage, false
					}
				}
				cl = rc
				break
			}
		} else {
			var pc *wire.Client
			if pc, err = wire.Dial(addr, time.Second); err == nil {
				if tenant != "" {
					if terr := pc.SetTenant(tenant); terr != nil {
						fmt.Fprintf(os.Stderr, "rd2: %v\n", terr)
						return exitUsage, false
					}
				}
				cl = pc
				break
			}
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "rd2: dial failed: %v (is rd2d running on %s?)\n", err, addr)
			return exitDial, false
		}
		time.Sleep(100 * time.Millisecond)
	}

	if err := cl.SendSource(src); err != nil {
		if errors.Is(err, wire.ErrBusy) {
			return 0, true // resumable client: reconnect short-circuited on a busy reject
		}
		// The daemon may have stopped reading because it rejected the
		// session: salvage the summary line before declaring a send failure.
		if sum, cerr := cl.Close(2 * time.Second); errors.Is(cerr, wire.ErrBusy) || sum.Busy {
			return 0, true
		}
		cl.Abort()
		if sid != "" {
			fmt.Fprintf(os.Stderr, "rd2: mid-stream send failed after %d reconnect attempts: %v\n", retries, err)
		} else {
			fmt.Fprintf(os.Stderr, "rd2: mid-stream send failed: %v (use -resume to survive connection loss)\n", err)
		}
		return exitSend, false
	}
	sum, err := cl.Close(30 * time.Second)
	if errors.Is(err, wire.ErrBusy) || sum.Busy {
		return 0, true
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rd2: stream delivered but summary read failed: %v (check the daemon's report output)\n", err)
		return exitSummaryRead, false
	}
	fmt.Printf("rd2: streamed %d events to %s: %d commutativity races\n",
		sum.Events, addr, sum.Races)
	if sum.Degraded {
		fmt.Fprintf(os.Stderr, "rd2: daemon: session degraded (races may be missing): skipped_frames=%d skipped_bytes=%d shard_panics=%d\n",
			sum.SkippedFrames, sum.SkippedBytes, sum.ShardPanics)
	}
	if sum.Resumes > 0 {
		fmt.Fprintf(os.Stderr, "rd2: session resumed %d time(s)\n", sum.Resumes)
	}
	if sum.Error != "" {
		fmt.Fprintf(os.Stderr, "rd2: daemon: %s\n", sum.Error)
		return exitUsage, false
	}
	if sum.Races > 0 {
		return exitRaces, false
	}
	return 0, false
}

// raceJSON is the machine-readable form of one race report.
type raceJSON struct {
	Object       int    `json:"object"`
	First        string `json:"first"`
	FirstThread  int    `json:"firstThread"`
	FirstPoint   string `json:"firstPoint"`
	Second       string `json:"second"`
	SecondThread int    `json:"secondThread"`
	SecondSeq    int    `json:"secondSeq"`
	SecondPoint  string `json:"secondPoint"`
}

// loadRep resolves a built-in spec name or parses a spec file and
// translates it.
func loadRep(name string) (ap.Rep, error) {
	if rep, err := specs.Rep(name); err == nil {
		return rep, nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("spec %q is neither built-in (%v) nor readable: %v",
			name, specs.Names(), err)
	}
	spec, err := ecl.ParseSpec(string(src))
	if err != nil {
		return nil, err
	}
	return translate.Translate(spec)
}
