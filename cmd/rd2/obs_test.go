package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestReportFlagWritesJSONL: -report streams one structured record per race
// (serial and sharded paths), each line valid JSON with the responsible
// spec attached.
func TestReportFlagWritesJSONL(t *testing.T) {
	tracePath := writeFile(t, "racy.trace", racyTrace)
	for _, shards := range []string{"1", "4"} {
		out := filepath.Join(t.TempDir(), "races.jsonl")
		code := run([]string{"-trace", tracePath, "-q", "-shards", shards, "-report", out})
		if code != 1 {
			t.Fatalf("shards=%s: exit = %d, want 1", shards, code)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lines := 0
		for sc.Scan() {
			lines++
			var rec core.RaceRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("shards=%s line %d: %v", shards, lines, err)
			}
			if rec.Spec != "dict" {
				t.Errorf("shards=%s line %d: spec = %q, want dict", shards, lines, rec.Spec)
			}
			if rec.First.Method == "" || len(rec.Second.Clock) == 0 {
				t.Errorf("shards=%s line %d: incomplete record %+v", shards, lines, rec)
			}
		}
		if lines == 0 {
			t.Fatalf("shards=%s: report file is empty", shards)
		}
	}
}

// TestReportFlagCleanTrace: no races → empty report file, exit 0.
func TestReportFlagCleanTrace(t *testing.T) {
	tracePath := writeFile(t, "clean.trace", cleanTrace)
	out := filepath.Join(t.TempDir(), "races.jsonl")
	if code := run([]string{"-trace", tracePath, "-q", "-report", out}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("report not empty for clean trace: %q", data)
	}
}

// TestHTTPFlagServesMetrics: -http (without -serve) exposes a /metrics
// snapshot that passes schema validation and carries core counters from the
// analysis. The server races with run() returning, so the scrape happens
// while rd2 is still inside run via the emitter-style polling below — here
// we instead bind the server ourselves through the same code path rd2 uses.
func TestHTTPFlagServesMetrics(t *testing.T) {
	obs.Default.Reset()
	obs.SetEnabled(true)
	defer func() {
		obs.SetEnabled(false)
		obs.Default.Reset()
	}()
	srv, err := obs.Serve("127.0.0.1:0", obs.Default)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tracePath := writeFile(t, "racy.trace", racyTrace)
	if code := run([]string{"-trace", tracePath, "-q"}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSnapshot(body); err != nil {
		t.Fatalf("metrics failed schema validation: %v\n%s", err, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core.actions"] == 0 {
		t.Errorf("core.actions = 0 after analyzing a trace; counters: %v", snap.Counters)
	}
	if snap.Counters["core.races"] == 0 {
		t.Errorf("core.races = 0 after a racy trace")
	}
}

// TestObsFlagEnablesMetrics: -obs flips the global switch (and run prints a
// final snapshot to stderr; here we just assert the switch and counters).
func TestObsFlagEnablesMetrics(t *testing.T) {
	obs.Default.Reset()
	defer func() {
		obs.SetEnabled(false)
		obs.Default.Reset()
	}()
	tracePath := writeFile(t, "clean.trace", cleanTrace)
	if code := run([]string{"-trace", tracePath, "-q", "-obs"}); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !obs.Enabled() {
		t.Fatal("-obs did not enable metrics")
	}
	if obs.GetCounter("core.actions").Load() == 0 {
		t.Error("core.actions not counted under -obs")
	}
}

// TestServeRequiresHTTP: -serve without -http is a usage error.
func TestServeRequiresHTTP(t *testing.T) {
	tracePath := writeFile(t, "clean.trace", cleanTrace)
	if code := run([]string{"-trace", tracePath, "-serve"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
