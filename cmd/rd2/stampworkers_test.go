package main

import "testing"

// TestStampWorkersFlag: -stampworkers routes through the two-pass parallel
// front end on both the serial detector (shards<=1) and the sharded
// pipeline, with identical exit codes on racy and clean traces.
func TestStampWorkersFlag(t *testing.T) {
	racy := writeFile(t, "racy.trace", racyTrace)
	clean := writeFile(t, "clean.trace", cleanTrace)
	for _, shards := range []string{"1", "4"} {
		for _, workers := range []string{"1", "2", "4"} {
			base := []string{"-shards", shards, "-stampworkers", workers, "-trace"}
			if code := run(append(base, racy)); code != 1 {
				t.Errorf("shards=%s stampworkers=%s racy: exit = %d, want 1",
					shards, workers, code)
			}
			if code := run(append(base, clean)); code != 0 {
				t.Errorf("shards=%s stampworkers=%s clean: exit = %d, want 0",
					shards, workers, code)
			}
		}
	}
}
