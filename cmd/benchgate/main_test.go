package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro/internal/hb
BenchmarkStampAll/action-8         	    1942	    654160 ns/op	  29595210 events/s	  239069 B/op	    2986 allocs/op
BenchmarkProcessAction           	171913221	         7.111 ns/op	       0 B/op	       0 allocs/op
PASS
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	act, ok := got["BenchmarkStampAll/action"]
	if !ok {
		t.Fatalf("missing normalized sub-benchmark name; parsed %v", got)
	}
	if act.AllocsOp != 2986 || act.NsOp != 654160 || act.BytesOp != 239069 {
		t.Fatalf("bad parse: %+v", act)
	}
	pa, ok := got["BenchmarkProcessAction"]
	if !ok || pa.AllocsOp != 0 || pa.NsOp != 7.111 {
		t.Fatalf("bad parse of un-suffixed name: %+v ok=%v", pa, ok)
	}
}

func TestParseBenchCollectsSamples(t *testing.T) {
	out := `BenchmarkA-8	10	100 ns/op
BenchmarkB-8	10	50 ns/op
BenchmarkA-8	10	300 ns/op
BenchmarkB-8	10	60 ns/op
BenchmarkA-8	10	200 ns/op
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	a := got["BenchmarkA"]
	if len(a.NsSamples) != 3 || median(a.NsSamples) != 200 {
		t.Fatalf("BenchmarkA samples %v, median %v, want 3 samples / median 200",
			a.NsSamples, median(a.NsSamples))
	}
	if a.NsOp != 200 { // flat field keeps the last observation
		t.Fatalf("BenchmarkA NsOp = %v, want 200", a.NsOp)
	}
	if b := got["BenchmarkB"]; median(b.NsSamples) != 50 {
		t.Fatalf("BenchmarkB median = %v, want 50 (lower middle of even count)", median(b.NsSamples))
	}
}

func TestRatioFlagSet(t *testing.T) {
	var r ratioFlags
	if err := r.Set("BenchmarkA/x=1, BenchmarkB ,1.5"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("BenchmarkC,BenchmarkD,0.9"); err != nil {
		t.Fatal(err)
	}
	want := []ratioCheck{
		{num: "BenchmarkA/x=1", den: "BenchmarkB", max: 1.5},
		{num: "BenchmarkC", den: "BenchmarkD", max: 0.9},
	}
	if len(r.checks) != 2 || r.checks[0] != want[0] || r.checks[1] != want[1] {
		t.Fatalf("checks = %+v, want %+v", r.checks, want)
	}
	for _, bad := range []string{"", "a,b", "a,b,c,d", "a,b,zero", "a,b,-1"} {
		if err := r.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted, want error", bad)
		}
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStampAll/action-8":  "BenchmarkStampAll/action",
		"BenchmarkStampAll/action":    "BenchmarkStampAll/action",
		"BenchmarkPipeline/shards=4":  "BenchmarkPipeline/shards=4",
		"BenchmarkFrontend/shards=16": "BenchmarkFrontend/shards=16",
		"BenchmarkX-12":               "BenchmarkX",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
