package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro/internal/hb
BenchmarkStampAll/action-8         	    1942	    654160 ns/op	  29595210 events/s	  239069 B/op	    2986 allocs/op
BenchmarkProcessAction           	171913221	         7.111 ns/op	       0 B/op	       0 allocs/op
PASS
`
	got, err := parseBench(bufio.NewScanner(strings.NewReader(out)))
	if err != nil {
		t.Fatal(err)
	}
	act, ok := got["BenchmarkStampAll/action"]
	if !ok {
		t.Fatalf("missing normalized sub-benchmark name; parsed %v", got)
	}
	if act.AllocsOp != 2986 || act.NsOp != 654160 || act.BytesOp != 239069 {
		t.Fatalf("bad parse: %+v", act)
	}
	pa, ok := got["BenchmarkProcessAction"]
	if !ok || pa.AllocsOp != 0 || pa.NsOp != 7.111 {
		t.Fatalf("bad parse of un-suffixed name: %+v ok=%v", pa, ok)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStampAll/action-8":  "BenchmarkStampAll/action",
		"BenchmarkStampAll/action":    "BenchmarkStampAll/action",
		"BenchmarkPipeline/shards=4":  "BenchmarkPipeline/shards=4",
		"BenchmarkFrontend/shards=16": "BenchmarkFrontend/shards=16",
		"BenchmarkX-12":               "BenchmarkX",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
