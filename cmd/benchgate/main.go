// Command benchgate compares `go test -bench -benchmem` output on stdin
// against a checked-in baseline (BENCH_baseline.json) with benchstat-style
// relative thresholds, and exits nonzero when a benchmark regressed. It is
// the allocation gate for the zero-clone stamping fast path: `make
// benchcmp` runs the stamping and pipeline benchmarks through it, and ci.sh
// wires in a smoke-size run so allocs/op regressions on the stamped path
// fail loudly.
//
// Usage:
//
//	go test -run '^$' -bench B -benchmem ./... | benchgate -baseline BENCH_baseline.json
//	go test -run '^$' -bench B -benchmem ./... | benchgate -write BENCH_baseline.json
//
// Gating rules (per benchmark present in both the input and the baseline):
//
//   - allocs/op may exceed the baseline by at most -allocs-tol (relative)
//     plus -allocs-slack (absolute) — allocation counts are nearly
//     deterministic, so the default tolerance is tight.
//   - ns/op may exceed the baseline by at most -time-tol, unless
//     -allocs-only is set (CI machines are noisy; the smoke gate checks
//     allocations only).
//
// Benchmarks missing from the baseline are reported but never fail the
// gate, so adding a benchmark does not require regenerating the baseline in
// the same change.
//
// Ratio gates compare two benchmarks WITHIN the same input instead of
// against the baseline — host-speed drift hits both sides equally, so the
// ratio is stable even on machines where absolute ns/op is not:
//
//	... | benchgate -baseline '' \
//	      -ratio 'BenchmarkPipelineFrontend/shards=4/stamp=2,BenchmarkPipelineFrontend/shards=1,1.0'
//
// fails when median ns/op of the first benchmark exceeds max × the second's.
// The flag repeats; each side must be present in the input (missing = exit
// 2, the gate never silently passes). When the input holds several samples
// of a name (interleaved rounds, -count), the median is used, so one noisy
// sample cannot flip the gate. -baseline '' skips the baseline comparison
// for ratio-only invocations.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. When the same benchmark appears
// several times in the input (interleaved rounds, -count), NsSamples keeps
// every ns/op observation for median-based ratio gates; the flat fields
// hold the last observation.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`

	NsSamples []float64 `json:"-"`
}

// Baseline is the checked-in reference file.
type Baseline struct {
	// Note is free-form provenance (host, date, command).
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// parseBench parses `go test -bench` output into name → Result. Names are
// normalized by stripping the trailing -GOMAXPROCS suffix so baselines
// transfer across hosts with different core counts.
func parseBench(r *bufio.Scanner) (map[string]Result, error) {
	out := map[string]Result{}
	for r.Scan() {
		line := r.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := normalizeName(fields[0])
		var res Result
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "B/op":
				res.BytesOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		res.NsSamples = append(out[name].NsSamples, res.NsOp)
		out[name] = res
	}
	return out, r.Err()
}

// median of a non-empty sample set (lower middle for even counts).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// ratioCheck is one -ratio gate: median ns/op of num must be at most
// max × median ns/op of den.
type ratioCheck struct {
	num, den string
	max      float64
}

// ratioFlags parses repeated -ratio 'Num,Den,max' flags.
type ratioFlags struct{ checks []ratioCheck }

func (r *ratioFlags) String() string { return fmt.Sprint(r.checks) }

func (r *ratioFlags) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want 'NumBench,DenBench,max', got %q", s)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("bad ratio limit %q", parts[2])
	}
	r.checks = append(r.checks, ratioCheck{
		num: strings.TrimSpace(parts[0]),
		den: strings.TrimSpace(parts[1]),
		max: max,
	})
	return nil
}

// normalizeName strips the -N GOMAXPROCS suffix Go appends to benchmark
// names ("BenchmarkStampAll/action-8" → "BenchmarkStampAll/action").
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline file to gate against")
		writePath    = flag.String("write", "", "write parsed results to this baseline file instead of gating")
		note         = flag.String("note", "", "provenance note stored with -write")
		allocsTol    = flag.Float64("allocs-tol", 0.10, "relative allocs/op headroom over baseline")
		allocsSlack  = flag.Float64("allocs-slack", 16, "absolute allocs/op headroom over baseline")
		timeTol      = flag.Float64("time-tol", 1.0, "relative ns/op headroom over baseline (1.0 = 2x)")
		allocsOnly   = flag.Bool("allocs-only", false, "gate allocs/op only (skip the noisy ns/op check)")
		ratios       ratioFlags
	)
	flag.Var(&ratios, "ratio",
		"in-run ratio gate 'NumBench,DenBench,max': median ns/op of Num must be <= max * Den (repeatable)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	got, err := parseBench(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin")
		os.Exit(2)
	}

	if *writePath != "" {
		out, err := json.MarshalIndent(Baseline{Note: *note, Benchmarks: got}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*writePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *writePath)
		return
	}

	var base Baseline
	if *baselinePath != "" {
		raw, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad baseline %s: %v\n", *baselinePath, err)
			os.Exit(2)
		}
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		if *baselinePath == "" {
			break // ratio-only invocation: no baseline to diff against
		}
		cur := got[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW   %-50s %10.0f allocs/op %12.0f ns/op (not in baseline)\n",
				name, cur.AllocsOp, cur.NsOp)
			continue
		}
		status := "ok   "
		if limit := ref.AllocsOp*(1+*allocsTol) + *allocsSlack; cur.AllocsOp > limit {
			status = "FAIL "
			failed = true
			fmt.Printf("%s %-50s allocs/op %0.0f > limit %0.0f (baseline %0.0f)\n",
				status, name, cur.AllocsOp, limit, ref.AllocsOp)
			continue
		}
		if !*allocsOnly {
			if limit := ref.NsOp * (1 + *timeTol); cur.NsOp > limit {
				status = "FAIL "
				failed = true
				fmt.Printf("%s %-50s ns/op %0.0f > limit %0.0f (baseline %0.0f)\n",
					status, name, cur.NsOp, limit, ref.NsOp)
				continue
			}
		}
		fmt.Printf("%s %-50s %10.0f allocs/op (baseline %0.0f) %12.0f ns/op (baseline %0.0f)\n",
			status, name, cur.AllocsOp, ref.AllocsOp, cur.NsOp, ref.NsOp)
	}
	for _, rc := range ratios.checks {
		num, okN := got[rc.num]
		den, okD := got[rc.den]
		if !okN || !okD {
			missing := rc.num
			if okN {
				missing = rc.den
			}
			fmt.Fprintf(os.Stderr, "benchgate: ratio gate: benchmark %q missing from input\n", missing)
			os.Exit(2)
		}
		nv, dv := median(num.NsSamples), median(den.NsSamples)
		ratio := nv / dv
		status := "ok   "
		if ratio > rc.max {
			status = "FAIL "
			failed = true
		}
		fmt.Printf("%s ratio %s / %s = %.3f (limit %.3f, medians %0.0f / %0.0f ns/op over %d+%d samples)\n",
			status, rc.num, rc.den, ratio, rc.max, nv, dv, len(num.NsSamples), len(den.NsSamples))
	}
	if failed {
		fmt.Println("benchgate: REGRESSION — see FAIL lines above")
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
