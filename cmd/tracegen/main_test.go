package main

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestGeneratesParseableTrace(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-seed", "9", "-threads", "2", "-ops-min", "3", "-ops-max", "5"}, &b); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	tr, err := trace.ParseString(b.String())
	if err != nil {
		t.Fatalf("generated trace does not parse: %v", err)
	}
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	var a, b strings.Builder
	if run([]string{"-seed", "4"}, &a) != 0 || run([]string{"-seed", "4"}, &b) != 0 {
		t.Fatal("runs failed")
	}
	if a.String() != b.String() {
		t.Fatal("same seed must generate the same trace")
	}
	var c strings.Builder
	if run([]string{"-seed", "5"}, &c) != 0 {
		t.Fatal("run failed")
	}
	if a.String() == c.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestBadFlags(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-nope"}, &b); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
