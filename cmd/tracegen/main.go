// Command tracegen produces random well-formed dictionary traces in the
// text format consumed by cmd/rd2 — fork/join structure, optional locking,
// and action return values consistent with the dictionary semantics.
//
//	tracegen -seed 7 -threads 4 -ops 20 > run.trace
//	rd2 -trace run.trace -spec dict
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	threads := fs.Int("threads", 3, "worker threads")
	objects := fs.Int("objects", 2, "dictionary objects")
	keys := fs.Int("keys", 4, "key universe size")
	opsMin := fs.Int("ops-min", 4, "minimum operations per thread")
	opsMax := fs.Int("ops-max", 10, "maximum operations per thread")
	locks := fs.Int("locks", 2, "lock universe size (0 disables locking)")
	plocked := fs.Int("p-locked", 30, "percent of operations under a lock")
	obsFlag := fs.Bool("obs", false, "print a generation metrics snapshot to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *obsFlag {
		obs.SetEnabled(true)
	}
	cfg := trace.GenConfig{
		Threads: *threads, Objects: *objects, Keys: *keys, Vals: 3,
		Locks: *locks, OpsMin: *opsMin, OpsMax: *opsMax,
		PSize: 15, PGet: 35, PLocked: *plocked, PRemove: 25,
	}
	tr := trace.Generate(rand.New(rand.NewSource(*seed)), cfg)
	obs.GetCounter("tracegen.events").Add(uint64(tr.Len()))
	if err := trace.Encode(out, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	if *obsFlag {
		fmt.Fprint(os.Stderr, obs.FormatSnapshot(obs.Default.Snapshot()))
	}
	return 0
}
