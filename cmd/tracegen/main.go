// Command tracegen produces well-formed traces for cmd/rd2, cmd/rd2d, and
// the benchmarks: random dictionary workloads (fork/join structure,
// optional locking, action return values consistent with the dictionary
// semantics) or recorded H2 circuit runs.
//
//	tracegen -seed 7 -threads 4 -ops 20 > run.trace
//	tracegen -seed 7 -o run.rdb                 # RDB2 binary (by extension)
//	tracegen -h2 ComplexConcurrency -o h2.rdb   # record an H2 circuit
//	rd2 -trace run.rdb -spec dict
//
// Output is the text format by default; -wire (or a -o path ending in
// .rdb) selects the RDB2 binary wire format of internal/wire.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro/internal/h2sim"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	threads := fs.Int("threads", 3, "worker threads")
	objects := fs.Int("objects", 2, "dictionary objects")
	keys := fs.Int("keys", 4, "key universe size")
	opsMin := fs.Int("ops-min", 4, "minimum operations per thread")
	opsMax := fs.Int("ops-max", 10, "maximum operations per thread")
	locks := fs.Int("locks", 2, "lock universe size (0 disables locking)")
	plocked := fs.Int("p-locked", 30, "percent of operations under a lock")
	h2 := fs.String("h2", "", "record this H2 circuit instead of generating a dictionary trace")
	h2ops := fs.Int("h2-ops", 0, "override the circuit's per-thread operation count (0 = default)")
	outPath := fs.String("o", "", "output file (default stdout)")
	wireOut := fs.Bool("wire", false, "emit the RDB2 binary wire format (implied by a .rdb -o path)")
	obsFlag := fs.Bool("obs", false, "print a generation metrics snapshot to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *obsFlag {
		obs.SetEnabled(true)
	}

	var tr *trace.Trace
	if *h2 != "" {
		c, ok := h2sim.CircuitByName(*h2)
		if !ok {
			names := make([]string, 0, len(h2sim.Circuits()))
			for _, c := range h2sim.Circuits() {
				names = append(names, fmt.Sprintf("%q", c.Name))
			}
			fmt.Fprintf(os.Stderr, "tracegen: unknown circuit %q (have %s)\n",
				*h2, strings.Join(names, ", "))
			return 2
		}
		if *h2ops > 0 {
			c = c.Scaled(*h2ops)
		}
		rt := monitor.NewRuntime()
		rt.Record()
		c.Run(rt, *seed)
		if err := rt.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		tr = rt.Trace()
	} else {
		cfg := trace.GenConfig{
			Threads: *threads, Objects: *objects, Keys: *keys, Vals: 3,
			Locks: *locks, OpsMin: *opsMin, OpsMax: *opsMax,
			PSize: 15, PGet: 35, PLocked: *plocked, PRemove: 25,
		}
		tr = trace.Generate(rand.New(rand.NewSource(*seed)), cfg)
	}
	obs.GetCounter("tracegen.events").Add(uint64(tr.Len()))

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			return 1
		}
		defer f.Close()
		out = f
		if strings.HasSuffix(*outPath, ".rdb") {
			*wireOut = true
		}
	}
	var err error
	if *wireOut {
		err = wire.EncodeTrace(out, tr)
	} else {
		err = trace.Encode(out, tr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		return 1
	}
	if *obsFlag {
		fmt.Fprint(os.Stderr, obs.FormatSnapshot(obs.Default.Snapshot()))
	}
	return 0
}
