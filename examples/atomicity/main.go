// Atomicity: the commutativity generalization of atomicity checking that
// Section 8 of the paper sketches. A memoization cache is filled with the
// classic check-then-act idiom:
//
//	atomic {                    // intended to be atomic
//	    if cache.get(key) == nil {
//	        cache.put(key, compute(key))
//	    }
//	}
//
// Two threads computing the same key interleave between the check and the
// act: the transaction's get and put conflict in both directions with the
// other thread's put — a cycle in the transactional conflict graph, so the
// block is not serializable. An interleaved operation that commutes (a
// different key) is not flagged, which is exactly what the commutativity
// notion of conflict buys over read/write conflicts.
//
//	go run ./examples/atomicity
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func main() {
	rt := monitor.NewRuntime()
	atom := monitor.AttachAtomicity(rt)
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	cache := rt.NewDict()

	key := trace.StrValue("expensive-result")
	getOrCompute := func(t *monitor.Thread, who string) {
		t.Atomic(func() {
			if cache.Get(t, key).IsNil() {
				fmt.Printf("  %s: cache miss, computing...\n", who)
				cache.Put(t, key, trace.IntValue(42))
			} else {
				fmt.Printf("  %s: cache hit\n", who)
			}
		})
	}

	w1 := main.Go(func(t *monitor.Thread) { getOrCompute(t, "worker-1") })
	w2 := main.Go(func(t *monitor.Thread) { getOrCompute(t, "worker-2") })
	main.JoinAll(w1, w2)

	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}

	violations := atom.Checker.Violations()
	fmt.Printf("\nlive run: %d atomicity violations, %d commutativity races\n",
		len(violations), rd2.Detector.Stats().Races)
	for _, v := range violations {
		fmt.Println(" ", v)
	}
	if len(violations) == 0 && rd2.Detector.Stats().Races > 0 {
		fmt.Println("the scheduler serialized the two blocks this run, but the race detector's")
		fmt.Println("vector clocks generalize over schedules and still flag the interference.")
	}

	// Part 2: the interleaving the race warns about, replayed
	// deterministically — the atomicity checker (which, like Velodrome,
	// judges the observed order) now sees the cycle.
	fmt.Println("\nforced interleaving (check … other-put … act):")
	forced := &trace.Trace{}
	forced.Append(trace.Event{Kind: trace.BeginEvent, Thread: 1})
	forced.Append(trace.Act(1, trace.Action{Obj: 0, Method: "get",
		Args: []trace.Value{key}, Rets: []trace.Value{trace.NilValue}}))
	forced.Append(trace.Act(2, trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{key, trace.IntValue(42)}, Rets: []trace.Value{trace.NilValue}}))
	forced.Append(trace.Act(1, trace.Action{Obj: 0, Method: "put",
		Args: []trace.Value{key, trace.IntValue(42)}, Rets: []trace.Value{trace.IntValue(42)}}))
	forced.Append(trace.Event{Kind: trace.EndEvent, Thread: 1})

	checker := monitor.NewAtomicity()
	checker.ObjectCreated(0, "dict")
	if err := checker.Checker.RunTrace(forced); err != nil {
		fmt.Fprintln(os.Stderr, "replay error:", err)
		os.Exit(2)
	}
	for _, v := range checker.Checker.Violations() {
		fmt.Println(" ", v)
	}
	if len(checker.Checker.Violations()) == 0 {
		fmt.Println("  unexpected: no violation found")
		os.Exit(1)
	}
}
