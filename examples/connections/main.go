// Connections: the running example of the paper (Fig 1 / Fig 3). The
// program connects to a list of hosts in parallel, storing each connection
// in a shared dictionary, then reports how many connections were
// established:
//
//	var o = dictionary();
//	for host in hosts { fork { o.put(host, createConnection(host)); } }
//	joinall;
//	print(o.size() + " connections established");
//
// When the host list contains duplicates, two threads race on
// o:w:'a.com' — the commutativity race of Fig 3 — and one connection
// object leaks. Run with:
//
//	go run ./examples/connections a.com b.com a.com
//
// (defaults to a duplicated list when no arguments are given).
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func main() {
	hosts := os.Args[1:]
	if len(hosts) == 0 {
		hosts = []string{"a.com", "a.com", "b.com"}
	}

	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	o := rt.NewDict()

	var workers []*monitor.Thread
	for i, h := range hosts {
		host := trace.StrValue(h)
		conn := trace.IntValue(int64(9000 + i)) // createConnection(host)
		workers = append(workers, main.Go(func(t *monitor.Thread) {
			prev := o.Put(t, host, conn)
			if !prev.IsNil() {
				fmt.Printf("  thread t%d: overwrote existing connection %s to %s (leak!)\n",
					t.ID, prev, h)
			}
		}))
	}
	main.JoinAll(workers...) // joinall
	fmt.Printf("%d connections established\n", o.Size(main))

	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}
	races := rd2.Detector.Races()
	if len(races) == 0 {
		fmt.Println("no commutativity races: the host list had no duplicates")
		return
	}
	fmt.Printf("\n%d commutativity race(s) — duplicate hosts detected:\n", len(races))
	for _, r := range races {
		fmt.Println(" ", r)
	}
	os.Exit(1)
}
