// Quickstart: the put/get commutativity race from Section 1 of the paper.
//
//	T1:                 T2:
//	1: fork T2;         3: int v = m.get(5);
//	2: m.put(5, 7);
//
// The two operations touch the same key, one of them writes, and nothing
// orders them — a commutativity race. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func main() {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})

	t1 := rt.Main()
	m := rt.NewDict()

	// T1 forks T2, which reads key 5 ...
	t2 := t1.Go(func(t *monitor.Thread) {
		v := m.Get(t, trace.IntValue(5))
		fmt.Printf("T2: m.get(5) = %s\n", v)
	})
	// ... while T1 concurrently writes it.
	m.Put(t1, trace.IntValue(5), trace.IntValue(7))
	t1.Join(t2)

	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}
	races := rd2.Detector.Races()
	fmt.Printf("\ncommutativity races: %d\n", len(races))
	for _, r := range races {
		fmt.Println(" ", r)
	}
	if len(races) == 0 {
		fmt.Println("(no race this run — the operations were ordered)")
	}
}
