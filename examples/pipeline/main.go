// Pipeline: monitored channels extend Table 1's synchronization vocabulary
// to Go-style message passing. A producer stage writes results into a
// shared dictionary and signals a consumer stage over a channel; the
// consumer then reads and augments the same keys. The channel's
// happens-before edges order the stages, so the detector stays silent —
// remove the signalling (-race flag) and the same operations race.
//
//	go run ./examples/pipeline          # channel-ordered: no races
//	go run ./examples/pipeline -race    # unordered: races
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func main() {
	unsync := flag.Bool("race", false, "drop the channel synchronization")
	flag.Parse()

	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	main := rt.Main()
	results := rt.NewDict()
	done := rt.NewChan(4)

	const jobs = 4
	producer := main.Go(func(t *monitor.Thread) {
		for i := 0; i < jobs; i++ {
			key := trace.IntValue(int64(i))
			results.Put(t, key, trace.IntValue(int64(i*i)))
			if !*unsync {
				done.Send(t, key) // publish the finished job
			}
		}
	})
	consumer := main.Go(func(t *monitor.Thread) {
		for i := 0; i < jobs; i++ {
			var key trace.Value
			if !*unsync {
				key = done.Recv(t) // wait for the producer's signal
			} else {
				key = trace.IntValue(int64(i))
			}
			v := results.Get(t, key)
			results.Put(t, key, trace.IntValue(v.Int()+1))
		}
	})
	main.JoinAll(producer, consumer)

	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}
	races := rd2.Detector.Stats().Races
	fmt.Printf("pipeline processed %d jobs; commutativity races: %d\n", jobs, races)
	if *unsync && races == 0 {
		fmt.Println("note: the unsynchronized run may still interleave benignly — the")
		fmt.Println("vector clocks flag it anyway on most schedules; rerun if 0")
	}
	if races > 0 {
		os.Exit(1)
	}
}
