// H2workload: run one Pole Position circuit of the H2 database simulator
// under the commutativity race detector, as in the paper's Table 2.
//
//	go run ./examples/h2workload                       # ComplexConcurrency
//	go run ./examples/h2workload InsertCentricConcurrency
//	go run ./examples/h2workload -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/h2sim"
	"repro/internal/monitor"
	"repro/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list available circuits")
	ops := flag.Int("ops", 400, "operations per worker thread")
	flag.Parse()
	if *list {
		for _, c := range h2sim.Circuits() {
			fmt.Printf("  %-50s threads=%d\n", c.Name, c.Threads)
		}
		return
	}
	name := "ComplexConcurrency"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	circuit, ok := h2sim.CircuitByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown circuit %q (use -list)\n", name)
		os.Exit(2)
	}

	// Uninstrumented baseline.
	base := circuit.Scaled(*ops).Run(monitor.NewRuntime(), 42)

	// Under RD2.
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	res := circuit.Scaled(*ops).Run(rt, 42)
	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}

	fmt.Printf("circuit %s: %d ops\n", circuit.Name, res.Ops)
	fmt.Printf("  uninstrumented: %8.0f qps\n", base.QPS())
	fmt.Printf("  under RD2:      %8.0f qps (%.1fx overhead)\n",
		res.QPS(), base.QPS()/res.QPS())
	st := rd2.Detector.Stats()
	fmt.Printf("  commutativity races: %d on %d distinct objects (%d conflict checks)\n",
		st.Races, rd2.Detector.DistinctObjects(), st.Checks)
	byObj := map[trace.ObjID]int{}
	for _, r := range rd2.Detector.Races() {
		byObj[r.Obj]++
	}
	for obj, n := range byObj {
		fmt.Printf("    o%d: %d races\n", int(obj), n)
	}
}
