// Snitchworkload: run the Cassandra DynamicEndpointSnitch scenario under
// both detectors, rediscovering the paper's third harmful race — samples
// are inserted while the map's size is concurrently used as a performance
// hint during rank recalculation.
//
//	go run ./examples/snitchworkload
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/snitch"
)

func main() {
	rt := monitor.NewRuntime()
	rd2 := monitor.AttachRD2(rt, core.Config{})
	ft := monitor.AttachFastTrack(rt)

	cfg := snitch.DefaultTestConfig()
	ops := snitch.RunTest(rt, cfg, 42)
	if err := rt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "analysis error:", err)
		os.Exit(2)
	}

	fmt.Printf("DynamicEndpointSnitch test: %d ops, %d hosts, %d request threads\n",
		ops, cfg.Hosts, cfg.Workers)
	fmt.Printf("  FASTTRACK: %d data races on %d variables\n",
		ft.Stats().Races, ft.DistinctVars())
	fmt.Printf("  RD2:       %d commutativity races on %d objects\n",
		rd2.Detector.Stats().Races, rd2.Detector.DistinctObjects())

	sizeRaces := 0
	for _, r := range rd2.Detector.Races() {
		if r.Second.Method == "size" || r.First.Method == "size" {
			sizeRaces++
		}
	}
	fmt.Printf("  of which size-hint races (paper finding 3): %d\n", sizeRaces)
	if sizeRaces > 0 {
		fmt.Println("  → the node-rank performance hint can become obsolete while it is used")
	}
}
