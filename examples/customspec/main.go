// Customspec: authoring an ECL commutativity specification for your own
// shared object and analyzing a recorded trace with it.
//
// The object is a bank account with deposit, withdraw, and balance. The
// interesting commutativity structure: deposits whose returned balance is
// not observed would commute, but since both mutators return the resulting
// balance they only commute when they are no-ops; failed withdrawals
// (insufficient funds, ok == false) behave as reads.
//
// Run with:
//
//	go run ./examples/customspec
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ecl"
	"repro/internal/trace"
	"repro/internal/translate"
)

// accountSpec is the ECL specification for the account object.
const accountSpec = `
object account

method deposit(amt) / (bal)
method withdraw(amt) / (ok)
method balance() / (bal)

# Mutators expose the running balance, so they only commute when they do
# not move it; a failed withdraw is a pure read.
commute deposit(a1)/(b1), deposit(a2)/(b2) when a1 == 0 && a2 == 0
commute deposit(a1)/(b1), withdraw(a2)/(k2) when a1 == 0 && k2 == false
commute deposit(a1)/(b1), balance()/(b) when a1 == 0
commute withdraw(a1)/(k1), withdraw(a2)/(k2) when k1 == false && k2 == false
commute withdraw(a1)/(k1), balance()/(b) when k1 == false
commute balance()/(b1), balance()/(b2) when true
`

// recordedTrace is an execution in the text trace format — two teller
// threads working on the same account without synchronization, then an
// auditor reading the balance after joining both.
const recordedTrace = `
t0 fork t1
t0 fork t2
t1 act o0.deposit(100)/100
t2 act o0.withdraw(30)/true
t2 act o0.withdraw(500)/false
t1 act o0.balance()/70
t0 join t1
t0 join t2
t0 act o0.balance()/70
`

func main() {
	// 1. Parse the specification and check it is inside ECL.
	spec, err := ecl.ParseSpec(accountSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spec error:", err)
		os.Exit(2)
	}

	// 2. Translate it to an access point representation (Section 6.2).
	rep, err := translate.Translate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "translate error:", err)
		os.Exit(2)
	}
	fmt.Printf("translated %q: %d point classes, each conflicting with at most %d others\n\n",
		spec.Object, rep.NumClasses(), rep.MaxConflicts())

	// 3. Replay the recorded trace through the detector.
	tr, err := trace.ParseString(recordedTrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace error:", err)
		os.Exit(2)
	}
	det := core.New(core.Config{})
	det.Register(0, rep)
	if err := det.RunTrace(tr); err != nil {
		fmt.Fprintln(os.Stderr, "detector error:", err)
		os.Exit(2)
	}

	races := det.Races()
	fmt.Printf("%d commutativity race(s):\n", len(races))
	for _, r := range races {
		fmt.Println(" ", r)
	}
	// Expected: the deposit and the successful withdraw race (unordered
	// mutators), and t1's balance() races with t2's successful withdraw.
	// The failed withdraw is a read and races with nothing here except
	// writes; the auditor's balance() after joinall is ordered and clean.
	if len(races) == 0 {
		os.Exit(1)
	}
}
