GO ?= go

.PHONY: all build vet test race differential bench ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test suite under the Go race detector; the pipeline package's shard
# goroutines get the heaviest exercise here.
race:
	$(GO) test -race ./...

# The serial-vs-sharded differential tests: trace replay, single-shard
# byte-for-byte, and the live same-runtime comparison.
differential:
	$(GO) test -race -run 'TestDifferential|TestSingleShardByteForByte|TestParallelMatchesSerial' ./internal/pipeline ./internal/monitor -v

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

ci: vet build race differential

clean:
	$(GO) clean ./...
