#!/bin/sh
# CI entry point: vet, build, full race-instrumented tests, and the
# serial-vs-sharded differential suite. Mirrors `make ci` for hosts
# without make.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== differential (serial vs sharded pipeline) =="
go test -race -run 'TestDifferential|TestSingleShardByteForByte|TestParallelMatchesSerial' \
    ./internal/pipeline ./internal/monitor -v

echo "CI OK"
