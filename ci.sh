#!/bin/sh
# CI entry point: vet, build, full race-instrumented tests, the
# serial-vs-sharded differential suite, and a smoke-size allocation gate on
# the happens-before front-end. Mirrors `make ci` for hosts without make.
#
# Flags:
#   -clockcheck   additionally run the whole test suite with poisoned clock
#                 snapshots (-tags=clockcheck): any consumer that writes
#                 through a shared Event.Clock panics. Guarded by this flag
#                 so the default tier-1 run stays fast.
set -eu

cd "$(dirname "$0")"

CLOCKCHECK=0
for arg in "$@"; do
    case "$arg" in
    -clockcheck) CLOCKCHECK=1 ;;
    *) echo "usage: ci.sh [-clockcheck]" >&2; exit 2 ;;
    esac
done

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== differential (serial vs sharded pipeline, clone vs snapshot stamping) =="
go test -race -run 'TestDifferential|TestSingleShardByteForByte|TestParallelMatchesSerial' \
    ./internal/pipeline ./internal/monitor -v

echo "== bench smoke (front-end allocation gate vs BENCH_baseline.json) =="
{
    go test -run '^$' -bench 'BenchmarkStampAll|BenchmarkProcessAction' \
        -benchmem -benchtime 100x ./internal/hb
    go test -run '^$' -bench 'BenchmarkPipelineFrontend' \
        -benchmem -benchtime 5x ./internal/pipeline
} | go run ./cmd/benchgate -baseline BENCH_baseline.json -allocs-only

if [ "$CLOCKCHECK" = 1 ]; then
    echo "== go test -tags=clockcheck (poisoned snapshots) =="
    go test -tags=clockcheck ./...
fi

echo "CI OK"
