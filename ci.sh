#!/bin/sh
# CI entry point: vet, build, full race-instrumented tests, the
# serial-vs-sharded and back-end-layout differential suites, and smoke-size
# allocation + ratio gates on the happens-before front-end and the
# detection back-end. Mirrors `make ci` for hosts without make.
#
# Flags:
#   -clockcheck   additionally run the whole test suite with poisoned clock
#                 snapshots (-tags=clockcheck): any consumer that writes
#                 through a shared Event.Clock panics. Guarded by this flag
#                 so the default tier-1 run stays fast.
#   -obs          additionally run the observability smoke: internal/obs
#                 under -race, the disabled-path zero-alloc gate
#                 (allocs-slack 0 — exactly zero allocations, including
#                 scoped registries and stage spans via obscheck -allocs),
#                 an HTTP end-to-end check (rd2 -http -serve, curl
#                 /metrics, obscheck schema validation), and a live rd2d
#                 scrape: stream a session in, then validate
#                 /metrics?format=prom with the strict Prometheus parser
#                 (obscheck -prom) and the /sessions listing.
#   -obs-only     run only the observability smoke (used by `make obs-smoke`).
#   -wire         additionally run the streaming smoke: record an H2 circuit
#                 in the RDB2 binary wire format, analyze it offline, stream
#                 it into a live rd2d daemon with rd2 -send, SIGTERM the
#                 daemon, and require the two JSONL race reports to be
#                 identical; then SIGTERM a second daemon mid-stream and
#                 require a clean drain with a complete final report.
#   -wire-only    run only the streaming smoke (used by `make wire-smoke`).
#   -chaos        additionally run the fault-tolerance smoke: the chaos test
#                 suite under -race with a hard timeout (injected worker and
#                 rep panics, corrupt streams under resync, abrupt client
#                 disconnects, the sever-at-every-chunk-boundary resume
#                 differential), a short fuzz budget over the corrupt-frame
#                 corpus, and live-binary injection runs (rd2d -inject +
#                 rd2 -send -resume) asserting the daemon never crashes or
#                 hangs and every faulted session reports itself degraded.
#   -chaos-only   run only the fault-tolerance smoke (used by `make chaos-smoke`).
#   -stamp        additionally run the parallel-stamping smoke: the
#                 parallel-vs-serial stamping differentials (byte-identical
#                 clocks, identical races and errors) under -race at
#                 GOMAXPROCS 1, 2 and 4 — the single-proc run exercises the
#                 worker pool fully serialized, the others with real
#                 preemption.
#   -stamp-only   run only the parallel-stamping smoke (used by `make stamp-smoke`).
#   -fleet        additionally run the fleet-scheduling smoke: the fleet test
#                 suite (differential, admission, chaos, starvation) under
#                 -race and again under -tags=clockcheck, then live binaries:
#                 a fleet-vs-perconn differential streaming the whole
#                 examples/traces corpus through both daemon modes and
#                 requiring byte-identical JSONL verdicts, and a fairness
#                 smoke where a quota-compliant background tenant must keep
#                 >= 80% of its isolated ingest rate while a hot tenant
#                 saturates the shared worker pool.
#   -fleet-only   run only the fleet-scheduling smoke (used by `make fleet-smoke`).
#   -durable      additionally run the durable-session smoke: the
#                 crash/restart differential tests under -race (in-process
#                 crash, torn snapshot, truncated WAL, snapshot-beyond-WAL,
#                 TTL expiry of on-disk state), then live binaries: rd2
#                 -send -resume -restart-window streams a long trace into
#                 rd2d -statedir while fault injection SIGKILLs the daemon
#                 mid-snapshot (ckpt-crash, leaving a half-written snapshot)
#                 and mid-WAL-append (wal-crash, leaving a torn WAL tail);
#                 the daemon restarts over the same state dir and the
#                 recovered JSONL verdicts must be byte-identical to an
#                 uninterrupted baseline run.
#   -durable-only run only the durable-session smoke (used by `make durable-smoke`).
set -eu

cd "$(dirname "$0")"

CLOCKCHECK=0
OBS=0
OBSONLY=0
WIRE=0
WIREONLY=0
CHAOS=0
CHAOSONLY=0
STAMP=0
STAMPONLY=0
FLEET=0
FLEETONLY=0
DURABLE=0
DURABLEONLY=0
for arg in "$@"; do
    case "$arg" in
    -clockcheck) CLOCKCHECK=1 ;;
    -obs) OBS=1 ;;
    -obs-only) OBS=1; OBSONLY=1 ;;
    -wire) WIRE=1 ;;
    -wire-only) WIRE=1; WIREONLY=1 ;;
    -chaos) CHAOS=1 ;;
    -chaos-only) CHAOS=1; CHAOSONLY=1 ;;
    -stamp) STAMP=1 ;;
    -stamp-only) STAMP=1; STAMPONLY=1 ;;
    -fleet) FLEET=1 ;;
    -fleet-only) FLEET=1; FLEETONLY=1 ;;
    -durable) DURABLE=1 ;;
    -durable-only) DURABLE=1; DURABLEONLY=1 ;;
    *) echo "usage: ci.sh [-clockcheck] [-obs|-obs-only] [-wire|-wire-only] [-chaos|-chaos-only] [-stamp|-stamp-only] [-fleet|-fleet-only] [-durable|-durable-only]" >&2; exit 2 ;;
    esac
done
ONLY=0
if [ "$OBSONLY" = 1 ] || [ "$WIREONLY" = 1 ] || [ "$CHAOSONLY" = 1 ] || [ "$STAMPONLY" = 1 ] || [ "$FLEETONLY" = 1 ] || [ "$DURABLEONLY" = 1 ]; then
    ONLY=1
else
    # The streaming smoke is part of the default CI path.
    WIRE=1
fi

if [ "$ONLY" = 0 ]; then
    echo "== go vet =="
    go vet ./...

    echo "== go build =="
    go build ./...

    echo "== go test -race =="
    go test -race ./...

    echo "== differential (serial vs sharded pipeline, clone vs snapshot vs parallel stamping, back-end layouts) =="
    # The root package carries the back-end layout differentials over the
    # live h2sim/snitch workloads; internal/core carries them over generated
    # traces, compaction interleavings, and the example-trace corpus.
    go test -race -run 'TestDifferential|TestSingleShardByteForByte|TestParallelMatchesSerial|TestCorpusParallel|TestRunParallelMatchesSerial' \
        . ./internal/pipeline ./internal/monitor ./internal/hb ./internal/core -v

    echo "== stamp differential under -tags=clockcheck (poisoned snapshots) =="
    go test -tags=clockcheck -count=1 \
        -run 'TestCorpusParallelStampingByteIdentical|TestStampAllParallelMatchesSerial|TestCorpusParallelFrontend|TestDifferentialParallelFrontend' \
        ./internal/hb ./internal/pipeline

    echo "== back-end differential under -tags=clockcheck (poisoned snapshots) =="
    # The layout back-end clones promoted clocks through its arena; poisoned
    # snapshots catch any path that instead retained or wrote a shared clock.
    go test -tags=clockcheck -count=1 -run 'TestDifferentialBackend' \
        . ./internal/core

    echo "== bench smoke (front-end + back-end allocation gate vs BENCH_baseline.json) =="
    {
        go test -run '^$' -bench 'BenchmarkStampAll|BenchmarkStampParallel|BenchmarkProcessAction' \
            -benchmem -benchtime 100x ./internal/hb
        go test -run '^$' -bench 'BenchmarkPipelineFrontend' \
            -benchmem -benchtime 5x ./internal/pipeline
        go test -run '^$' -bench 'BenchmarkDetectBackend' \
            -benchmem -benchtime 20x ./internal/core
    } | go run ./cmd/benchgate -baseline BENCH_baseline.json -allocs-only

    echo "== bench ratio gate (parallel front end vs serial shards=1, interleaved rounds) =="
    # The two variants alternate binary-run by binary-run so host-speed
    # drift hits both sides equally; benchgate takes the median ns/op per
    # side. An absolute ns/op gate would be meaningless on a noisy box — a
    # ratio of medians from interleaved samples is stable.
    #
    # The limit depends on the processor count: with >= 2 CPUs the parallel
    # front end must be at least as fast as the serial shards=1 baseline
    # (the Amdahl wall this path removes must not return). A single-CPU box
    # cannot show parallel speedup — there the gate instead bounds the
    # two-pass machinery's overhead at 10% (the pre-optimization wall
    # measured ~1.28x, so a regression still trips it).
    NCPU=$(nproc 2>/dev/null || echo 1)
    if [ "$NCPU" -ge 2 ]; then
        RATIO_LIMIT=1.0
    else
        RATIO_LIMIT=1.10
    fi
    RATIOTMP=$(mktemp -d)
    go test -c -o "$RATIOTMP/pipeline.test" ./internal/pipeline
    for round in 1 2 3; do
        "$RATIOTMP/pipeline.test" -test.run '^$' \
            -test.bench 'BenchmarkPipelineFrontend/shards=1$' -test.benchtime 10x
        "$RATIOTMP/pipeline.test" -test.run '^$' \
            -test.bench 'BenchmarkPipelineFrontend/shards=4/stamp=2$' -test.benchtime 10x
    done > "$RATIOTMP/bench.out"
    go run ./cmd/benchgate -baseline '' \
        -ratio "BenchmarkPipelineFrontend/shards=4/stamp=2,BenchmarkPipelineFrontend/shards=1,$RATIO_LIMIT" \
        < "$RATIOTMP/bench.out"
    rm -rf "$RATIOTMP"

    echo "== bench ratio gate (layout back end vs map reference, interleaved rounds) =="
    # Same interleaved-median methodology as above, but CPU-count
    # independent: both sides are single-detector replays of the same
    # stamped trace, so the allocation-free layout must never be slower than
    # the map-based reference it replaced. dist=churn is the gated pair —
    # it exercises every layer (inline set, spill, table growth, arena
    # recycling) and showed the widest margin at introduction (~0.5x).
    LAYOUTTMP=$(mktemp -d)
    go test -c -o "$LAYOUTTMP/core.test" ./internal/core
    for round in 1 2 3; do
        "$LAYOUTTMP/core.test" -test.run '^$' \
            -test.bench 'BenchmarkDetectBackend/dist=churn/layout=table$' -test.benchtime 20x
        "$LAYOUTTMP/core.test" -test.run '^$' \
            -test.bench 'BenchmarkDetectBackend/dist=churn/layout=map$' -test.benchtime 20x
    done > "$LAYOUTTMP/bench.out"
    go run ./cmd/benchgate -baseline '' \
        -ratio "BenchmarkDetectBackend/dist=churn/layout=table,BenchmarkDetectBackend/dist=churn/layout=map,1.0" \
        < "$LAYOUTTMP/bench.out"
    rm -rf "$LAYOUTTMP"
fi

if [ "$CLOCKCHECK" = 1 ]; then
    echo "== go test -tags=clockcheck (poisoned snapshots) =="
    go test -tags=clockcheck ./...
fi

if [ "$OBS" = 1 ]; then
    echo "== obs: go test -race ./internal/obs/... =="
    go test -race ./internal/obs/...

    echo "== obs: disabled-path zero-alloc gate (allocs-slack 0) =="
    go test -run '^$' -bench 'BenchmarkObsDisabled' -benchmem -benchtime 1000x ./internal/obs \
        | go run ./cmd/benchgate -baseline BENCH_baseline.json -allocs-only -allocs-slack 0

    echo "== obs: scoped-registry + span disabled-path alloc gate (obscheck -allocs) =="
    go run ./cmd/obscheck -allocs

    echo "== obs: http smoke (rd2 -http -serve / curl /metrics / obscheck) =="
    OBSTMP=$(mktemp -d)
    RD2PID=""
    cleanup() {
        [ -n "$RD2PID" ] && kill "$RD2PID" 2>/dev/null || true
        rm -rf "$OBSTMP"
    }
    trap cleanup EXIT
    OBSADDR=127.0.0.1:36061
    go run ./cmd/tracegen -seed 7 -threads 4 -ops-min 20 -ops-max 40 > "$OBSTMP/run.trace"
    go build -o "$OBSTMP/rd2" ./cmd/rd2
    "$OBSTMP/rd2" -trace "$OBSTMP/run.trace" -q -http "$OBSADDR" -serve 2> "$OBSTMP/rd2.log" &
    RD2PID=$!
    ok=0
    i=0
    while [ $i -lt 50 ]; do
        if curl -fsS "http://$OBSADDR/metrics" > "$OBSTMP/snap.json" 2>/dev/null; then
            ok=1
            break
        fi
        i=$((i + 1))
        sleep 0.2
    done
    if [ "$ok" != 1 ]; then
        echo "obs smoke: /metrics never came up on $OBSADDR" >&2
        cat "$OBSTMP/rd2.log" >&2
        exit 1
    fi
    curl -fsS "http://$OBSADDR/healthz" | grep -q ok
    go run ./cmd/obscheck "$OBSTMP/snap.json"
    kill "$RD2PID" 2>/dev/null || true
    wait "$RD2PID" 2>/dev/null || true
    RD2PID=""

    echo "== obs: rd2d prom scrape (stream a session, /metrics?format=prom, /sessions) =="
    PROMADDR=127.0.0.1:36062
    PROMHTTP=127.0.0.1:36063
    go build -o "$OBSTMP/rd2d" ./cmd/rd2d
    go build -o "$OBSTMP/rd2obs" ./cmd/rd2
    "$OBSTMP/rd2d" -listen "$PROMADDR" -http "$PROMHTTP" -q \
        2> "$OBSTMP/rd2d.log" &
    RD2PID=$!
    ok=0
    i=0
    while [ $i -lt 50 ]; do
        if curl -fsS "http://$PROMHTTP/healthz" > /dev/null 2>&1; then
            ok=1
            break
        fi
        i=$((i + 1))
        sleep 0.2
    done
    [ "$ok" = 1 ] || { echo "obs smoke: rd2d /healthz never came up" >&2; cat "$OBSTMP/rd2d.log" >&2; exit 1; }
    rc=0
    "$OBSTMP/rd2obs" -trace "$OBSTMP/run.trace" -send "$PROMADDR" -send-wait 10s -q || rc=$?
    [ "$rc" -le 1 ] || { echo "obs smoke: rd2 -send rc $rc" >&2; cat "$OBSTMP/rd2d.log" >&2; exit 1; }
    # The finished session lingers (default resume TTL), so the scrape sees
    # its per-session series next to the rolled-up globals.
    curl -fsS "http://$PROMHTTP/metrics?format=prom" > "$OBSTMP/scrape.prom"
    go run ./cmd/obscheck -prom "$OBSTMP/scrape.prom"
    grep -q 'session="' "$OBSTMP/scrape.prom" || {
        echo "obs smoke: prom scrape has no per-session series" >&2
        head -20 "$OBSTMP/scrape.prom" >&2
        exit 1
    }
    curl -fsS "http://$PROMHTTP/sessions" > "$OBSTMP/sessions.json"
    grep -q '"stage.detect"' "$OBSTMP/sessions.json" || {
        echo "obs smoke: /sessions has no stage digests" >&2
        cat "$OBSTMP/sessions.json" >&2
        exit 1
    }
    kill -TERM "$RD2PID" 2>/dev/null || true
    wait "$RD2PID" 2>/dev/null || true
    RD2PID=""
    echo "obs smoke OK"
fi

if [ "$WIRE" = 1 ]; then
    echo "== wire: rd2d end-to-end (stream vs offline, SIGTERM drain) =="
    WIRETMP=$(mktemp -d)
    RD2DPID=""
    cleanup_wire() {
        [ -n "$RD2DPID" ] && kill "$RD2DPID" 2>/dev/null || true
        rm -rf "$WIRETMP"
        [ -n "${OBSTMP:-}" ] && rm -rf "$OBSTMP" || true
    }
    trap cleanup_wire EXIT
    WIREADDR=127.0.0.1:36072
    go build -o "$WIRETMP/rd2" ./cmd/rd2
    go build -o "$WIRETMP/rd2d" ./cmd/rd2d
    go build -o "$WIRETMP/tracegen" ./cmd/tracegen

    # Record an H2 circuit directly in the RDB2 binary wire format.
    "$WIRETMP/tracegen" -h2 ComplexConcurrency -o "$WIRETMP/h2.rdb"

    # Offline reference run over the binary trace (exit 1 = races found).
    rc=0
    "$WIRETMP/rd2" -trace "$WIRETMP/h2.rdb" -q -report "$WIRETMP/off.jsonl" || rc=$?
    [ "$rc" -le 1 ] || { echo "wire smoke: offline rd2 failed (rc $rc)" >&2; exit 1; }

    # Online: stream the same trace into a live daemon, then SIGTERM it.
    # -compact-every 0 keeps reported point clocks byte-identical to the
    # offline run (compaction trims dead-thread clock entries).
    "$WIRETMP/rd2d" -listen "$WIREADDR" -q -compact-every 0 \
        -report "$WIRETMP/on.jsonl" 2> "$WIRETMP/rd2d.log" &
    RD2DPID=$!
    rc=0
    "$WIRETMP/rd2" -trace "$WIRETMP/h2.rdb" -send "$WIREADDR" -send-wait 10s -q || rc=$?
    [ "$rc" -le 1 ] || { echo "wire smoke: rd2 -send failed (rc $rc)" >&2; cat "$WIRETMP/rd2d.log" >&2; exit 1; }
    kill -TERM "$RD2DPID"
    rc=0
    wait "$RD2DPID" || rc=$?
    RD2DPID=""
    [ "$rc" -le 1 ] || { echo "wire smoke: rd2d exited rc $rc" >&2; cat "$WIRETMP/rd2d.log" >&2; exit 1; }
    # Discovery order differs between the serial offline run and the
    # sharded online session; the sorted reports must be identical. The
    # daemon stamps each record with its session id and per-session seq
    # (offline rd2 does not) — strip that prefix before comparing.
    sort "$WIRETMP/off.jsonl" > "$WIRETMP/off.sorted"
    sed 's/^{"session":"[^"]*","seq":[0-9]*,/{/' "$WIRETMP/on.jsonl" \
        | sort > "$WIRETMP/on.sorted"
    if ! diff -q "$WIRETMP/off.sorted" "$WIRETMP/on.sorted" > /dev/null; then
        echo "wire smoke: streamed race report differs from offline report" >&2
        diff "$WIRETMP/off.sorted" "$WIRETMP/on.sorted" | head >&2
        exit 1
    fi
    echo "wire smoke: $(wc -l < "$WIRETMP/on.jsonl") streamed race records match offline"

    # SIGTERM mid-stream: a much longer stream is cut by the drain; the
    # daemon must still exit cleanly with a complete final report.
    "$WIRETMP/tracegen" -h2 ComplexConcurrency -h2-ops 60000 -o "$WIRETMP/big.rdb"
    "$WIRETMP/rd2d" -listen "$WIREADDR" -q -max-races 10 \
        -report "$WIRETMP/drain.jsonl" 2> "$WIRETMP/drain.log" &
    RD2DPID=$!
    "$WIRETMP/rd2" -trace "$WIRETMP/big.rdb" -send "$WIREADDR" -send-wait 10s -q 2>/dev/null || true &
    SENDPID=$!
    sleep 0.5
    kill -TERM "$RD2DPID"
    rc=0
    wait "$RD2DPID" || rc=$?
    RD2DPID=""
    wait "$SENDPID" 2>/dev/null || true
    [ "$rc" -le 1 ] || { echo "wire smoke: drain exited rc $rc" >&2; cat "$WIRETMP/drain.log" >&2; exit 1; }
    grep -q "draining" "$WIRETMP/drain.log" || { echo "wire smoke: no drain log line" >&2; cat "$WIRETMP/drain.log" >&2; exit 1; }
    grep -q "race records written" "$WIRETMP/drain.log" || { echo "wire smoke: no final report line" >&2; cat "$WIRETMP/drain.log" >&2; exit 1; }
    grep -q "drained:" "$WIRETMP/drain.log" || { echo "wire smoke: no drained totals line" >&2; cat "$WIRETMP/drain.log" >&2; exit 1; }
    echo "wire smoke OK"
fi

if [ "$CHAOS" = 1 ]; then
    echo "== chaos: fault-tolerance tests (-race, hard timeout) =="
    go test -race -timeout 180s \
        -run 'TestDaemonSurvives|TestDaemonResync|TestDaemonClientGone|TestDaemonResumeAtEveryChunkBoundary' \
        ./cmd/rd2d
    go test -race -timeout 120s \
        -run 'TestResync|TestSessionDedup|TestChunkGap|TestAdoptState|TestResumableClient' \
        ./internal/wire
    go test -race -timeout 60s ./internal/faultinject

    echo "== chaos: wire decoder fuzz (short budget over the corrupt-frame corpus) =="
    go test -run '^$' -fuzz 'FuzzWireRoundTrip' -fuzztime 10s ./internal/wire

    echo "== chaos: live daemon under injected faults =="
    CHAOSTMP=$(mktemp -d)
    CHAOSPID=""
    cleanup_chaos() {
        [ -n "$CHAOSPID" ] && kill -9 "$CHAOSPID" 2>/dev/null || true
        rm -rf "$CHAOSTMP"
        [ -n "${WIRETMP:-}" ] && rm -rf "$WIRETMP" || true
        [ -n "${OBSTMP:-}" ] && rm -rf "$OBSTMP" || true
    }
    trap cleanup_chaos EXIT
    CHAOSADDR=127.0.0.1:36083
    go build -o "$CHAOSTMP/rd2" ./cmd/rd2
    go build -o "$CHAOSTMP/rd2d" ./cmd/rd2d
    go run ./cmd/tracegen -seed 11 -threads 4 -ops-min 20 -ops-max 40 > "$CHAOSTMP/run.trace"

    for inject in worker-panic:25 rep-panic:30; do
        "$CHAOSTMP/rd2d" -listen "$CHAOSADDR" -q -resync -inject "$inject" \
            -report "$CHAOSTMP/chaos.jsonl" 2> "$CHAOSTMP/rd2d.log" &
        CHAOSPID=$!
        # The client run is bounded: a hang is a failure, not a stall.
        rc=0
        timeout 30 "$CHAOSTMP/rd2" -trace "$CHAOSTMP/run.trace" \
            -send "$CHAOSADDR" -send-wait 10s -resume -q 2> "$CHAOSTMP/send.log" || rc=$?
        [ "$rc" -le 1 ] || {
            echo "chaos smoke ($inject): rd2 -send rc $rc" >&2
            cat "$CHAOSTMP/send.log" "$CHAOSTMP/rd2d.log" >&2
            exit 1
        }
        # The fault must be surfaced, not swallowed: the client saw an
        # explicitly degraded session.
        grep -q "degraded" "$CHAOSTMP/send.log" || {
            echo "chaos smoke ($inject): client never saw a degraded summary" >&2
            cat "$CHAOSTMP/send.log" "$CHAOSTMP/rd2d.log" >&2
            exit 1
        }
        # The daemon survived the injected panic and shuts down cleanly,
        # within a hard deadline (a wedged daemon is a failure).
        kill -0 "$CHAOSPID" 2>/dev/null || {
            echo "chaos smoke ($inject): daemon died" >&2
            cat "$CHAOSTMP/rd2d.log" >&2
            exit 1
        }
        kill -TERM "$CHAOSPID"
        i=0
        while kill -0 "$CHAOSPID" 2>/dev/null; do
            i=$((i + 1))
            if [ $i -gt 50 ]; then
                echo "chaos smoke ($inject): daemon hung on shutdown" >&2
                cat "$CHAOSTMP/rd2d.log" >&2
                kill -9 "$CHAOSPID" 2>/dev/null || true
                exit 1
            fi
            sleep 0.2
        done
        wait "$CHAOSPID" 2>/dev/null || true
        CHAOSPID=""
        echo "chaos smoke ($inject): degraded session reported, daemon survived"
    done
    echo "chaos smoke OK"
fi

if [ "$STAMP" = 1 ]; then
    echo "== stamp smoke: parallel-vs-serial stamping at GOMAXPROCS 1, 2, 4 =="
    # GOMAXPROCS=1 runs the worker pool fully serialized (every handoff is a
    # yield), higher values with real preemption. -count=1 defeats the test
    # cache: GOMAXPROCS is read by the runtime, not os.Getenv, so cached
    # results would otherwise be reused across processor counts.
    for procs in 1 2 4; do
        echo "-- GOMAXPROCS=$procs"
        GOMAXPROCS=$procs go test -race -count=1 \
            -run 'TestStampAllParallelMatchesSerial|TestCorpusParallelStampingByteIdentical|TestParallelStreamMatchesStream|TestParallelStamperChunked|TestDifferentialParallelFrontend|TestRunParallelMatchesSerial' \
            ./internal/hb ./internal/pipeline ./internal/core
    done
    echo "stamp smoke OK"
fi

if [ "$FLEET" = 1 ]; then
    echo "== fleet: scheduler + daemon tests (-race) =="
    go test -race -timeout 180s ./internal/fleet
    go test -race -timeout 300s -run 'TestFleet|TestMaxSessionsCap' ./cmd/rd2d

    echo "== fleet: differential + chaos under -tags=clockcheck (poisoned snapshots) =="
    go test -tags=clockcheck -count=1 -timeout 300s \
        -run 'TestFleetDifferentialCorpus|TestFleetMultiTenantChaos' ./cmd/rd2d

    echo "== fleet: live fleet-vs-perconn differential over examples/traces =="
    FLEETTMP=$(mktemp -d)
    FLEETPID=""
    HOTPIDS=""
    cleanup_fleet() {
        [ -n "$FLEETPID" ] && kill "$FLEETPID" 2>/dev/null || true
        for p in $HOTPIDS; do kill "$p" 2>/dev/null || true; done
        rm -rf "$FLEETTMP"
        [ -n "${CHAOSTMP:-}" ] && rm -rf "$CHAOSTMP" || true
        [ -n "${WIRETMP:-}" ] && rm -rf "$WIRETMP" || true
        [ -n "${OBSTMP:-}" ] && rm -rf "$OBSTMP" || true
    }
    trap cleanup_fleet EXIT
    FLEETADDR=127.0.0.1:36093
    go build -o "$FLEETTMP/rd2" ./cmd/rd2
    go build -o "$FLEETTMP/rd2d" ./cmd/rd2d

    # Stream the whole corpus through both daemon modes; after stripping the
    # daemon-assigned session id and seq, the JSONL verdicts must be
    # byte-identical. -compact-every 0 on both sides so point-clock
    # renderings cannot drift with compaction timing.
    for mode in perconn fleet; do
        if [ "$mode" = fleet ]; then
            MODEFLAGS="-fleet -fleet-workers 2 -max-sessions 64"
        else
            MODEFLAGS=""
        fi
        # shellcheck disable=SC2086
        "$FLEETTMP/rd2d" -listen "$FLEETADDR" -q -compact-every 0 $MODEFLAGS \
            -report "$FLEETTMP/$mode.jsonl" 2> "$FLEETTMP/$mode.log" &
        FLEETPID=$!
        for tracefile in examples/traces/*; do
            rc=0
            timeout 60 "$FLEETTMP/rd2" -trace "$tracefile" -send "$FLEETADDR" \
                -send-wait 10s -tenant smoke -q || rc=$?
            [ "$rc" -le 1 ] || {
                echo "fleet smoke ($mode): rd2 -send $tracefile rc $rc" >&2
                cat "$FLEETTMP/$mode.log" >&2
                exit 1
            }
        done
        kill -TERM "$FLEETPID"
        rc=0
        wait "$FLEETPID" || rc=$?
        FLEETPID=""
        [ "$rc" -le 1 ] || { echo "fleet smoke ($mode): rd2d rc $rc" >&2; cat "$FLEETTMP/$mode.log" >&2; exit 1; }
        sed 's/^{"session":"[^"]*","seq":[0-9]*,/{/' "$FLEETTMP/$mode.jsonl" \
            | sort > "$FLEETTMP/$mode.sorted"
    done
    if ! diff -q "$FLEETTMP/perconn.sorted" "$FLEETTMP/fleet.sorted" > /dev/null; then
        echo "fleet smoke: fleet-mode verdicts differ from per-conn verdicts" >&2
        diff "$FLEETTMP/perconn.sorted" "$FLEETTMP/fleet.sorted" | head >&2
        exit 1
    fi
    [ -s "$FLEETTMP/fleet.sorted" ] || { echo "fleet smoke: corpus produced no race records" >&2; exit 1; }
    echo "fleet smoke: $(wc -l < "$FLEETTMP/fleet.sorted") verdicts byte-identical across modes"

    echo "== fleet: fairness smoke (hot tenant vs quota-compliant background tenant) =="
    # The background tenant is paced by its own 5000 events/s token bucket;
    # a saturating hot tenant (three unthrottled streams) must not push its
    # ingest below 80% of the isolated rate, i.e. the contended send may
    # take at most 1.25x the isolated send (plus a fixed scheduling slack).
    go run ./cmd/tracegen -seed 5 -threads 4 -ops-min 400 -ops-max 400 > "$FLEETTMP/bg.trace"
    go run ./cmd/tracegen -seed 9 -threads 4 -ops-min 20000 -ops-max 20000 > "$FLEETTMP/hot.trace"
    "$FLEETTMP/rd2d" -listen "$FLEETADDR" -q -fleet -fleet-workers 2 \
        -tenant-quota 'bg:events=5000,burst=250' 2> "$FLEETTMP/fair.log" &
    FLEETPID=$!

    T0=$(date +%s%N)
    rc=0
    timeout 60 "$FLEETTMP/rd2" -trace "$FLEETTMP/bg.trace" -send "$FLEETADDR" \
        -send-wait 10s -tenant bg -q || rc=$?
    [ "$rc" -le 1 ] || { echo "fleet smoke: isolated bg send rc $rc" >&2; cat "$FLEETTMP/fair.log" >&2; exit 1; }
    T1=$(date +%s%N)
    D_ISO=$(( (T1 - T0) / 1000000 ))

    for i in 1 2 3; do
        timeout 120 "$FLEETTMP/rd2" -trace "$FLEETTMP/hot.trace" -send "$FLEETADDR" \
            -send-wait 10s -tenant hot -q 2>/dev/null &
        HOTPIDS="$HOTPIDS $!"
    done
    sleep 0.3 # let the hot tenant get resident and saturate the pool
    T0=$(date +%s%N)
    rc=0
    timeout 60 "$FLEETTMP/rd2" -trace "$FLEETTMP/bg.trace" -send "$FLEETADDR" \
        -send-wait 10s -tenant bg -q || rc=$?
    [ "$rc" -le 1 ] || { echo "fleet smoke: contended bg send rc $rc" >&2; cat "$FLEETTMP/fair.log" >&2; exit 1; }
    T1=$(date +%s%N)
    D_HOT=$(( (T1 - T0) / 1000000 ))
    for p in $HOTPIDS; do wait "$p" || true; done
    HOTPIDS=""

    LIMIT=$(( D_ISO * 5 / 4 + 150 ))
    echo "fleet smoke: bg isolated ${D_ISO}ms, under hot tenant ${D_HOT}ms (limit ${LIMIT}ms)"
    [ "$D_HOT" -le "$LIMIT" ] || {
        echo "fleet smoke: background tenant fell below 80% of its isolated ingest rate" >&2
        cat "$FLEETTMP/fair.log" >&2
        exit 1
    }
    kill -TERM "$FLEETPID"
    wait "$FLEETPID" 2>/dev/null || true
    FLEETPID=""
    echo "fleet smoke OK"
fi

if [ "$DURABLE" = 1 ]; then
    echo "== durable: crash/restart differential tests (-race) =="
    go test -race -timeout 300s \
        -run 'TestDurable|TestScanReport|TestHealthzPhases' ./cmd/rd2d
    go test -race -timeout 120s ./internal/pipeline

    echo "== durable: live SIGKILL-restart-resume differential (torn snapshot, torn WAL) =="
    DURTMP=$(mktemp -d)
    DURPID=""
    DSENDPID=""
    cleanup_durable() {
        [ -n "$DURPID" ] && kill -9 "$DURPID" 2>/dev/null || true
        [ -n "$DSENDPID" ] && kill -9 "$DSENDPID" 2>/dev/null || true
        rm -rf "$DURTMP"
        [ -n "${FLEETTMP:-}" ] && rm -rf "$FLEETTMP" || true
        [ -n "${CHAOSTMP:-}" ] && rm -rf "$CHAOSTMP" || true
        [ -n "${WIRETMP:-}" ] && rm -rf "$WIRETMP" || true
        [ -n "${OBSTMP:-}" ] && rm -rf "$OBSTMP" || true
    }
    trap cleanup_durable EXIT
    DURADDR=127.0.0.1:36113
    go build -o "$DURTMP/rd2" ./cmd/rd2
    go build -o "$DURTMP/rd2d" ./cmd/rd2d
    # Long enough for several 16 KiB frames (so both injection points land
    # mid-stream) and for multiple checkpoints at -ckpt-every 128.
    go run ./cmd/tracegen -seed 17 -threads 4 -ops-min 3000 -ops-max 3000 \
        > "$DURTMP/run.trace"

    # Uninterrupted baseline verdicts. -compact-every 0 on every daemon in
    # this smoke so point-clock renderings cannot drift with restart timing.
    "$DURTMP/rd2d" -listen "$DURADDR" -q -compact-every 0 \
        -report "$DURTMP/base.jsonl" 2> "$DURTMP/base.log" &
    DURPID=$!
    rc=0
    timeout 60 "$DURTMP/rd2" -trace "$DURTMP/run.trace" -send "$DURADDR" \
        -send-wait 10s -resume -q || rc=$?
    [ "$rc" -le 1 ] || { echo "durable smoke: baseline send rc $rc" >&2; cat "$DURTMP/base.log" >&2; exit 1; }
    kill -TERM "$DURPID"
    rc=0
    wait "$DURPID" || rc=$?
    DURPID=""
    [ "$rc" -le 1 ] || { echo "durable smoke: baseline rd2d rc $rc" >&2; cat "$DURTMP/base.log" >&2; exit 1; }
    sed 's/^{"session":"[^"]*","seq":[0-9]*,/{/' "$DURTMP/base.jsonl" \
        | sort > "$DURTMP/base.sorted"
    [ -s "$DURTMP/base.sorted" ] || { echo "durable smoke: trace produced no race records" >&2; exit 1; }

    # ckpt-crash:2 dies by SIGKILL on the second snapshot with the snapshot
    # file half-written in place; wal-crash:3 dies on the third WAL append
    # with half a frame on disk. Either way the restarted daemon must
    # recover to the exact baseline verdicts.
    for inject in ckpt-crash:2 wal-crash:3; do
        rm -rf "$DURTMP/state"
        rm -f "$DURTMP/dur.jsonl"
        "$DURTMP/rd2d" -listen "$DURADDR" -q -compact-every 0 \
            -statedir "$DURTMP/state" -ckpt-every 128 \
            -report "$DURTMP/dur.jsonl" -inject "$inject" \
            2> "$DURTMP/dur1.log" &
        DURPID=$!
        timeout 120 "$DURTMP/rd2" -trace "$DURTMP/run.trace" -send "$DURADDR" \
            -send-wait 10s -resume -restart-window 60s -q \
            2> "$DURTMP/send.log" &
        DSENDPID=$!
        # The injected fault must SIGKILL the daemon mid-stream; a daemon
        # that outlives the deadline means the injection never fired.
        i=0
        while kill -0 "$DURPID" 2>/dev/null; do
            i=$((i + 1))
            if [ $i -gt 300 ]; then
                echo "durable smoke ($inject): daemon never crashed" >&2
                cat "$DURTMP/dur1.log" >&2
                exit 1
            fi
            sleep 0.2
        done
        rc=0
        wait "$DURPID" || rc=$?
        DURPID=""
        [ "$rc" -ge 128 ] || {
            echo "durable smoke ($inject): daemon exited rc $rc, expected a SIGKILL death" >&2
            cat "$DURTMP/dur1.log" >&2
            exit 1
        }
        # Restart over the same state dir and report file; the client's
        # restart window keeps it redialing the refused port until the
        # reborn daemon has rehydrated and adopts the session.
        "$DURTMP/rd2d" -listen "$DURADDR" -q -compact-every 0 \
            -statedir "$DURTMP/state" -ckpt-every 128 \
            -report "$DURTMP/dur.jsonl" 2> "$DURTMP/dur2.log" &
        DURPID=$!
        rc=0
        wait "$DSENDPID" || rc=$?
        DSENDPID=""
        [ "$rc" -le 1 ] || {
            echo "durable smoke ($inject): resumed rd2 -send rc $rc" >&2
            cat "$DURTMP/send.log" "$DURTMP/dur1.log" "$DURTMP/dur2.log" >&2
            exit 1
        }
        kill -TERM "$DURPID"
        rc=0
        wait "$DURPID" || rc=$?
        DURPID=""
        [ "$rc" -le 1 ] || { echo "durable smoke ($inject): restarted rd2d rc $rc" >&2; cat "$DURTMP/dur2.log" >&2; exit 1; }
        sed 's/^{"session":"[^"]*","seq":[0-9]*,/{/' "$DURTMP/dur.jsonl" \
            | sort > "$DURTMP/dur.sorted"
        if ! diff -q "$DURTMP/base.sorted" "$DURTMP/dur.sorted" > /dev/null; then
            echo "durable smoke ($inject): recovered verdicts differ from baseline" >&2
            diff "$DURTMP/base.sorted" "$DURTMP/dur.sorted" | head >&2
            exit 1
        fi
        echo "durable smoke ($inject): $(wc -l < "$DURTMP/dur.sorted") verdicts byte-identical across the SIGKILL restart"
    done
    echo "durable smoke OK"
fi

echo "CI OK"
