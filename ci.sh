#!/bin/sh
# CI entry point: vet, build, full race-instrumented tests, the
# serial-vs-sharded differential suite, and a smoke-size allocation gate on
# the happens-before front-end. Mirrors `make ci` for hosts without make.
#
# Flags:
#   -clockcheck   additionally run the whole test suite with poisoned clock
#                 snapshots (-tags=clockcheck): any consumer that writes
#                 through a shared Event.Clock panics. Guarded by this flag
#                 so the default tier-1 run stays fast.
#   -obs          additionally run the observability smoke: internal/obs
#                 under -race, the disabled-path zero-alloc gate
#                 (allocs-slack 0 — exactly zero allocations), and an HTTP
#                 end-to-end check (rd2 -http -serve, curl /metrics,
#                 obscheck schema validation).
#   -obs-only     run only the observability smoke (used by `make obs-smoke`).
set -eu

cd "$(dirname "$0")"

CLOCKCHECK=0
OBS=0
OBSONLY=0
for arg in "$@"; do
    case "$arg" in
    -clockcheck) CLOCKCHECK=1 ;;
    -obs) OBS=1 ;;
    -obs-only) OBS=1; OBSONLY=1 ;;
    *) echo "usage: ci.sh [-clockcheck] [-obs|-obs-only]" >&2; exit 2 ;;
    esac
done

if [ "$OBSONLY" = 0 ]; then
    echo "== go vet =="
    go vet ./...

    echo "== go build =="
    go build ./...

    echo "== go test -race =="
    go test -race ./...

    echo "== differential (serial vs sharded pipeline, clone vs snapshot stamping) =="
    go test -race -run 'TestDifferential|TestSingleShardByteForByte|TestParallelMatchesSerial' \
        ./internal/pipeline ./internal/monitor -v

    echo "== bench smoke (front-end allocation gate vs BENCH_baseline.json) =="
    {
        go test -run '^$' -bench 'BenchmarkStampAll|BenchmarkProcessAction' \
            -benchmem -benchtime 100x ./internal/hb
        go test -run '^$' -bench 'BenchmarkPipelineFrontend' \
            -benchmem -benchtime 5x ./internal/pipeline
    } | go run ./cmd/benchgate -baseline BENCH_baseline.json -allocs-only
fi

if [ "$CLOCKCHECK" = 1 ]; then
    echo "== go test -tags=clockcheck (poisoned snapshots) =="
    go test -tags=clockcheck ./...
fi

if [ "$OBS" = 1 ]; then
    echo "== obs: go test -race ./internal/obs/... =="
    go test -race ./internal/obs/...

    echo "== obs: disabled-path zero-alloc gate (allocs-slack 0) =="
    go test -run '^$' -bench 'BenchmarkObsDisabled' -benchmem -benchtime 1000x ./internal/obs \
        | go run ./cmd/benchgate -baseline BENCH_baseline.json -allocs-only -allocs-slack 0

    echo "== obs: http smoke (rd2 -http -serve / curl /metrics / obscheck) =="
    OBSTMP=$(mktemp -d)
    RD2PID=""
    cleanup() {
        [ -n "$RD2PID" ] && kill "$RD2PID" 2>/dev/null || true
        rm -rf "$OBSTMP"
    }
    trap cleanup EXIT
    OBSADDR=127.0.0.1:36061
    go run ./cmd/tracegen -seed 7 -threads 4 -ops-min 20 -ops-max 40 > "$OBSTMP/run.trace"
    go build -o "$OBSTMP/rd2" ./cmd/rd2
    "$OBSTMP/rd2" -trace "$OBSTMP/run.trace" -q -http "$OBSADDR" -serve 2> "$OBSTMP/rd2.log" &
    RD2PID=$!
    ok=0
    i=0
    while [ $i -lt 50 ]; do
        if curl -fsS "http://$OBSADDR/metrics" > "$OBSTMP/snap.json" 2>/dev/null; then
            ok=1
            break
        fi
        i=$((i + 1))
        sleep 0.2
    done
    if [ "$ok" != 1 ]; then
        echo "obs smoke: /metrics never came up on $OBSADDR" >&2
        cat "$OBSTMP/rd2.log" >&2
        exit 1
    fi
    curl -fsS "http://$OBSADDR/healthz" | grep -q ok
    go run ./cmd/obscheck "$OBSTMP/snap.json"
    kill "$RD2PID" 2>/dev/null || true
    wait "$RD2PID" 2>/dev/null || true
    RD2PID=""
    echo "obs smoke OK"
fi

echo "CI OK"
